(** Coordinator-side answer verification: the semantic firewall behind the
    fleet's byzantine defense (docs/ROBUSTNESS.md).

    The reliability layer guarantees {e transport}: a delivered frame is
    the frame that was sent (CRC32), or nothing. It cannot guarantee that
    the {e worker computed the right thing} — a compromised or buggy
    worker can return a perfectly-framed wrong answer, which is exactly
    what {!Matprod_comm.Fault.check_byzantine} simulates. This module
    gives the coordinator cheap semantic checks on a decoded shard
    answer, derived only from quantities the coordinator can afford to
    compute locally:

    - the {e exact} shard mass ‖A⟨i⟩·B‖₁ = Σ_k colweight(A⟨i⟩,k)·rowweight(B,k),
      O(nnz) — Remark 2's identity, reused as an invariant;
    - the entry cap ‖C‖∞ ≤ min(max row weight of A, max column weight
      of B) and the pair count, giving Cauchy–Schwarz-style ranges for
      every ℓp statistic;
    - exact per-coordinate adjudication for reported samples and heavy
      hitters (one sorted-array intersection each);
    - Freivalds' probabilistic identity test for exact-product shares.

    Every check is a pure function of (summary, seed, answer): all
    verification randomness derives from the seed, so a verifying fleet
    is as reproducible as a trusting one. Checks are {e sound} for the
    registry's default queries — an honest default-query answer passes —
    and are deliberately generous (slack factors cover estimator error):
    a [Fail] verdict certifies a violated invariant, a [Pass] only says
    the answer is within the family's documented bound. Tight detection
    of in-bound lies is the replica {!vote}'s job.

    Cost is charged to counters [verify_checks] / [verify_failures] and
    histogram [verify_ns], inside span [verify.check]. *)

(** A failed check names the violated invariant (stable, snake-case — it
    is surfaced in {!Matprod_core.Outcome.Byzantine_detected}) and a
    human-readable detail. *)
type verdict = Pass | Fail of { invariant : string; detail : string }

val verdict_to_string : verdict -> string

(** What the coordinator precomputes about one shard workload [(a, b)]
    before asking anyone anything. [l1] is exact; everything else is a
    bound. Building one is O(nnz(a) + nnz(b)); the lazy transpose of [b]
    is forced only by coordinate-level checks. *)
type summary = {
  sname : string;  (** estimator registry name the checks specialise to *)
  out_rows : int;  (** rows of C = a·b *)
  out_cols : int;
  inner : int;  (** shared dimension *)
  l1 : float;  (** exact ‖a·b‖₁ (Remark 2's column/row-sum identity) *)
  cap : float;  (** entry-wise bound: C_ij <= min(amax, bmax) *)
  a : Matprod_matrix.Bmat.t;
  b : Matprod_matrix.Bmat.t;
  bt : Matprod_matrix.Bmat.t Lazy.t;  (** transpose of [b], on demand *)
}

val summarize :
  name:string ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  summary

val check :
  summary -> seed:int -> Matprod_core.Estimator.comparable -> verdict
(** Validate a decoded shard answer against the summary's invariants.
    Dispatches on the answer shape and [sname]:

    - [Number]: finite, non-negative, integral for exact counting
      families, inside the family's slacked range (exact equality for
      [l1_exact]);
    - [Leveled]: estimate within the κ-approximation range, level sane;
    - [Coords]: indices in bounds, no duplicates, every reported
      coordinate exactly (φ−ε)-heavy (one intersection per coordinate);
    - [Sample]/[Samples]: indices in bounds, the carried payload exactly
      right — the ℓ0 value equals |A_r ∩ B^c|, the ℓ1 witness is a real
      common index;
    - [Shares]: indices in bounds, total mass exactly [l1], and
      Freivalds' test C·x = A·(B·x) over seeded 0/1 vectors.

    Estimators this module does not know pass vacuously (they are
    vouched for by replica voting only). *)

val check_answer :
  summary -> seed:int -> Matprod_engine.Engine.query ->
  Matprod_engine.Engine.answer -> verdict
(** {!check} for the engine's batch answers, specialised by the query
    (the query carries the accuracy, so slacks adapt to it). *)

(** {1 Corruption (the attack half)}

    The transform a {!Matprod_comm.Fault.check_byzantine} firing applies
    to the victim's decoded answer. Lives here rather than in [Fault]
    because the comm layer cannot see {!Matprod_core.Estimator.comparable};
    the fleet composes the two at the answer boundary. *)

val corrupt :
  Matprod_comm.Fault.byzantine_mode ->
  Matprod_util.Prng.t ->
  Matprod_core.Estimator.comparable ->
  Matprod_core.Estimator.comparable
(** [Scale] multiplies magnitudes by 16 (shifts coordinates); [Sign_flip]
    negates values and indices; [Swap] transposes indexed shapes and
    inverts scalar magnitudes; [Garbage] replaces the payload with seeded
    out-of-range junk. Empty answers ([None] samples, empty sets) pass
    through unchanged — there is nothing to lie about. *)

val corrupt_answer :
  Matprod_comm.Fault.byzantine_mode ->
  Matprod_util.Prng.t ->
  Matprod_engine.Engine.answer ->
  Matprod_engine.Engine.answer
(** {!corrupt} on the engine's answer shapes. *)

(** {1 Replica voting}

    How [r] independently-seeded answers to the same shard are reconciled.
    Families differ in what "agreement" can mean: exact families must
    match bit-for-bit (after canonicalisation — additive shares at
    different seeds split differently but reconstruct the same product),
    numeric families agree up to their approximation ratio, sampling and
    subset families are adjudicated per-answer by {!check} (each sample
    is individually provable, so replicas never vote each other out). *)

type family =
  | Exact  (** value determined by the input: vote by structural equality *)
  | Numeric of { ratio : float }
      (** scalar estimate: replicas consistent within [ratio] (∞ = any) *)
  | Level of { ratio : float }  (** leveled estimate: ratio on estimates *)
  | Subset  (** coordinate report: adjudicated by {!check}, never outvoted *)
  | Sampled  (** drawn entries: adjudicated by {!check}, never outvoted *)

val family_of : string -> family
(** Registry name → voting family. Unknown names get
    [Numeric {ratio = infinity}]: replica answers are collected but never
    quarantine each other. *)

type vote_result = {
  chosen : int;  (** replica index of the representative answer *)
  chosen_answer : Matprod_core.Estimator.comparable;
      (** the representative's original (uncanonicalised) answer *)
  agreed : int list;  (** the winning pairwise-consistent majority *)
  outvoted : (int * string) list;
      (** quarantined replicas with the disagreement detail *)
}

val vote :
  summary ->
  (int * Matprod_core.Estimator.comparable) list ->
  vote_result option
(** Reconcile the validator-passing replicas of one shard. Consistency is
    pairwise (never against a pooled center — the median of {v, 16v} at
    r = 2 would indict the honest replica); the winners are the largest
    pairwise-consistent subset holding a strict majority, and the
    representative is the lowest-index winner (numeric families: the
    winner closest to the {!Matprod_util.Stats.median} of the winning
    values, the Boosting tie-break). [None] means no strict majority
    exists — the shard is ambiguous and the whole replica group must be
    treated as lost. A singleton input always wins its own vote. Raises
    [Invalid_argument] beyond 16 replicas. *)
