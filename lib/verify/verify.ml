module Bmat = Matprod_matrix.Bmat
module Estimator = Matprod_core.Estimator
module L0_sampling = Matprod_core.L0_sampling
module L1_sampling = Matprod_core.L1_sampling
module Engine = Matprod_engine.Engine
module Fault = Matprod_comm.Fault
module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace
module Json = Matprod_obs.Json

type verdict = Pass | Fail of { invariant : string; detail : string }

let verdict_to_string = function
  | Pass -> "pass"
  | Fail { invariant; detail } -> Printf.sprintf "%s (%s)" invariant detail

let fail invariant fmt = Printf.ksprintf (fun detail -> Fail { invariant; detail }) fmt

type summary = {
  sname : string;
  out_rows : int;
  out_cols : int;
  inner : int;
  l1 : float;
  cap : float;
  a : Bmat.t;
  b : Bmat.t;
  bt : Bmat.t Lazy.t;
}

let summarize ~name ~a ~b =
  if Bmat.cols a <> Bmat.rows b then
    invalid_arg "Verify.summarize: inner dimensions disagree";
  let inner = Bmat.cols a in
  (* Remark 2's identity: ||AB||_1 = sum_k colweight(A,k) * rowweight(B,k).
     Exact, O(nnz), and it never touches the product. *)
  let colw_a = Bmat.col_weights a in
  let l1 = ref 0.0 in
  for k = 0 to inner - 1 do
    l1 := !l1 +. (float_of_int colw_a.(k) *. float_of_int (Bmat.row_weight b k))
  done;
  let amax = ref 0 in
  for i = 0 to Bmat.rows a - 1 do
    amax := max !amax (Bmat.row_weight a i)
  done;
  let bmax = Array.fold_left max 0 (Bmat.col_weights b) in
  {
    sname = name;
    out_rows = Bmat.rows a;
    out_cols = Bmat.cols b;
    inner;
    l1 = !l1;
    cap = float_of_int (min !amax bmax);
    a;
    b;
    bt = lazy (Bmat.transpose b);
  }

(* Size of the intersection of two sorted index arrays — the exact entry
   C_rc = |A_r ∩ B^c|, one merge walk. *)
let inter_count xs ys =
  let n = Array.length xs and m = Array.length ys in
  let i = ref 0 and j = ref 0 and c = ref 0 in
  while !i < n && !j < m do
    let x = xs.(!i) and y = ys.(!j) in
    if x = y then begin incr c; incr i; incr j end
    else if x < y then incr i
    else incr j
  done;
  !c

let entry_value s r c = inter_count (Bmat.row s.a r) (Bmat.row (Lazy.force s.bt) c)

(* --- derived ranges ----------------------------------------------------- *)

let pairs s = float_of_int s.out_rows *. float_of_int s.out_cols

(* True l0 = ||AB||_0 lies in [l1/cap, min(l1, pairs)]; every range here
   is a bound on the TRUE statistic, with estimator error absorbed by a
   per-family slack at check time. *)
let l0_lo s = if s.l1 <= 0.0 || s.cap <= 0.0 then 0.0 else max 1.0 (s.l1 /. s.cap)
let l0_hi s = min s.l1 (pairs s)
let linf_lo s = if s.l1 <= 0.0 then 0.0 else max 1.0 (s.l1 /. pairs s)
let l2_lo s = if s.l1 <= 0.0 then 0.0 else max s.l1 (s.l1 *. s.l1 /. pairs s)
let l2_hi s = s.l1 *. s.cap

type num_spec = {
  lo : float;
  hi : float;
  slack : float;  (** multiplicative widening covering estimator error *)
  integral : bool;  (** exact counting family: must be a whole number *)
  exact : float option;  (** known exact value (l1_exact) *)
}

let spec ?(slack = 1.0) ?(integral = false) ?exact lo hi =
  Some { lo; hi; slack; integral; exact }

(* Accepted range per registry name, at the registry default query.
   Unknown names return None: vouched for by replica voting only. *)
let num_spec s =
  match s.sname with
  | "lp p=0" -> spec ~slack:3.0 (l0_lo s) (l0_hi s)
  | "lp p=1" -> spec ~slack:3.0 s.l1 s.l1
  | "lp oneround p=2" -> spec ~slack:4.0 (l2_lo s) (l2_hi s)
  (* srht estimates the same statistic, Σ C_rc² = ‖AB‖_F². *)
  | "srht" -> spec ~slack:4.0 (l2_lo s) (l2_hi s)
  | "cohen_baseline" -> spec ~slack:3.0 (l0_lo s) (l0_hi s)
  | "l1_exact" -> spec ~integral:true ~exact:s.l1 s.l1 s.l1
  | "linf_general" ->
      (* kappa = 2 default: the estimate may undershoot by the factor. *)
      spec ~slack:2.0 (linf_lo s /. 2.0) s.cap
  | "session" -> spec ~slack:4.0 (2.0 *. l0_lo s) (2.0 *. l0_hi s)
  | "trivial" -> spec ~integral:true (l0_lo s) (l0_hi s)
  | "joins equality" -> spec ~integral:true 0.0 (pairs s)
  | "joins disjointness" ->
      spec (Float.max 0.0 (pairs s -. (3.0 *. l0_hi s))) (pairs s)
  | "joins atleast" -> spec 0.0 (3.0 *. l0_hi s)
  | _ -> None

let check_number_spec { lo; hi; slack; integral; exact } x =
  let fuzz = 1e-6 *. (1.0 +. Float.abs hi) in
  if not (Float.is_finite x) then fail "finite" "value %h is not finite" x
  else if x < -.fuzz then fail "non_negative" "value %g is negative" x
  else if integral && Float.abs (x -. Float.round x) > 1e-6 then
    fail "integral" "exact counting statistic %g is not a whole number" x
  else
    match exact with
    | Some v when Float.abs (x -. v) > fuzz ->
        fail "exact_value" "got %g, the identity gives exactly %g" x v
    | _ ->
        if x < (lo /. slack) -. fuzz then
          fail "range_low" "%g below slacked lower bound %g" x (lo /. slack)
        else if x > (hi *. slack) +. fuzz then
          fail "range_high" "%g above slacked upper bound %g" x (hi *. slack)
        else Pass

let check_number s x =
  match num_spec s with None -> Pass | Some sp -> check_number_spec sp x

(* Leveled estimates: kappa-approximation range on the estimate, sanity
   on the subsampling level. *)
let check_leveled s est level =
  let kappa =
    match s.sname with "linf_binary" -> 2.5 | "linf_kappa" -> 4.0 | _ -> 4.0
  in
  if level < 0 || level > 64 then
    fail "level_range" "subsampling level %d outside [0, 64]" level
  else if not (Float.is_finite est) then fail "finite" "estimate %h not finite" est
  else if est < -1e-9 then fail "non_negative" "estimate %g is negative" est
  else
    let lo = linf_lo s /. kappa /. 2.0 and hi = s.cap *. 2.0 in
    let fuzz = 1e-6 *. (1.0 +. hi) in
    if est < lo -. fuzz then
      fail "range_low" "estimate %g below %g (kappa %.1f)" est lo kappa
    else if est > hi +. fuzz then
      fail "range_high" "estimate %g above %g" est hi
    else Pass

let in_bounds s r c = r >= 0 && r < s.out_rows && c >= 0 && c < s.out_cols

(* Heavy-hitter reports: every coordinate must really be (phi - eps)-heavy
   — adjudicated exactly, one intersection per reported coordinate. The
   registry defaults are phi = 0.2, eps = 0.1 for all three hh families. *)
let check_coords ?(phi = 0.2) ?(eps = 0.1) s cs =
  let thresh = ((phi -. eps) *. s.l1) -. 1e-9 in
  let seen = Hashtbl.create 16 in
  let rec go = function
    | [] -> Pass
    | (r, c) :: rest ->
        if not (in_bounds s r c) then
          fail "index_bounds" "coordinate (%d, %d) outside %dx%d" r c s.out_rows
            s.out_cols
        else if Hashtbl.mem seen (r, c) then
          fail "duplicate_coord" "coordinate (%d, %d) reported twice" r c
        else begin
          Hashtbl.add seen (r, c) ();
          let v = float_of_int (entry_value s r c) in
          if v < thresh then
            fail "heaviness" "C(%d,%d) = %g below (phi-eps) threshold %g" r c v
              thresh
          else go rest
        end
  in
  go cs

(* Drawn entries are individually provable: the l0 sample carries the
   exact entry value, the l1 sample carries a witness index. *)
let check_l0_sample s = function
  | None -> Pass
  | Some (r, c, v) ->
      if not (in_bounds s r c) then
        fail "index_bounds" "sample (%d, %d) outside %dx%d" r c s.out_rows
          s.out_cols
      else
        let truth = entry_value s r c in
        if v <> truth then
          fail "sample_value" "sample claims C(%d,%d) = %d, truth is %d" r c v
            truth
        else if truth = 0 then
          fail "sample_support" "sample (%d, %d) is a zero entry" r c
        else Pass

let check_l1_sample s = function
  | None -> Pass
  | Some (r, c, w) ->
      if not (in_bounds s r c) then
        fail "index_bounds" "sample (%d, %d) outside %dx%d" r c s.out_rows
          s.out_cols
      else if w < 0 || w >= s.inner then
        fail "index_bounds" "witness %d outside inner dimension %d" w s.inner
      else if not (Bmat.get s.a r w && Bmat.get s.b w c) then
        fail "sample_witness" "witness %d is not a common index of A_%d and B^%d"
          w r c
      else Pass

let check_sample s v =
  match s.sname with
  | "l1_sampling" -> check_l1_sample s v
  | _ -> check_l0_sample s v

(* Additive product shares: total mass must equal the exact l1 (scale,
   sign and garbage all move it), and Freivalds' identity C.x = A.(B.x)
   over seeded 0/1 vectors catches anything that preserves mass. *)
let freivalds_rounds = 6

let check_shares s ~seed (ea, eb) =
  let bad =
    List.find_opt
      (fun (r, c, _) -> not (in_bounds s r c))
      (List.rev_append ea eb)
  in
  match bad with
  | Some (r, c, _) ->
      fail "index_bounds" "share entry (%d, %d) outside %dx%d" r c s.out_rows
        s.out_cols
  | None ->
      let mass =
        List.fold_left (fun acc (_, _, v) -> acc + v) 0 (List.rev_append ea eb)
      in
      if Float.abs (float_of_int mass -. s.l1) > 1e-6 then
        fail "share_mass" "shares sum to %d, the identity gives %g" mass s.l1
      else begin
        let g = Prng.derive seed 0x46726576 (* "Frev" *) 1 in
        let violation = ref None in
        let round = ref 0 in
        while !violation = None && !round < freivalds_rounds do
          incr round;
          let x = Array.init s.out_cols (fun _ -> if Prng.bool g then 1 else 0) in
          (* y_claim = C'.x from the claimed entries *)
          let y_claim = Array.make s.out_rows 0 in
          List.iter
            (fun (r, c, v) -> if x.(c) = 1 then y_claim.(r) <- y_claim.(r) + v)
            (List.rev_append ea eb);
          (* y_true = A.(B.x), never materialising C *)
          let u = Array.make s.inner 0 in
          for k = 0 to s.inner - 1 do
            u.(k) <-
              Array.fold_left (fun acc j -> acc + x.(j)) 0 (Bmat.row s.b k)
          done;
          let i = ref 0 in
          while !violation = None && !i < s.out_rows do
            let yt =
              Array.fold_left (fun acc k -> acc + u.(k)) 0 (Bmat.row s.a !i)
            in
            if yt <> y_claim.(!i) then violation := Some (!round, !i, y_claim.(!i), yt);
            incr i
          done
        done;
        match !violation with
        | None -> Pass
        | Some (r, i, got, want) ->
            fail "freivalds" "round %d row %d: C.x = %d but A.(B.x) = %d" r i got
              want
      end

(* --- the dispatcher, with cost accounting ------------------------------- *)

let c_checks = Metrics.counter "verify_checks"
let c_failures = Metrics.counter "verify_failures"
let h_verify = Metrics.histogram "verify_ns"

let shape_name : Estimator.comparable -> string = function
  | Estimator.Number _ -> "number"
  | Estimator.Coords _ -> "coords"
  | Estimator.Sample _ -> "sample"
  | Estimator.Samples _ -> "samples"
  | Estimator.Shares _ -> "shares"
  | Estimator.Leveled _ -> "leveled"

let accounted s ~shape f =
  if Metrics.enabled () then Metrics.incr c_checks;
  let v =
    Trace.with_span ~name:"verify.check"
      ~attrs:[ ("estimator", Json.String s.sname); ("shape", Json.String shape) ]
      (fun () -> Metrics.timed h_verify f)
  in
  (match v with
  | Pass -> ()
  | Fail { invariant; detail } ->
      if Metrics.enabled () then Metrics.incr c_failures;
      if Trace.enabled () then
        Trace.event ~name:"verify.violation"
          ~attrs:
            [
              ("estimator", Json.String s.sname);
              ("invariant", Json.String invariant);
              ("detail", Json.String detail);
            ]
          ());
  v

let check s ~seed (answer : Estimator.comparable) =
  accounted s ~shape:(shape_name answer) @@ fun () ->
  match answer with
  | Estimator.Number x -> check_number s x
  | Estimator.Leveled (est, level) -> check_leveled s est level
  | Estimator.Coords cs -> check_coords s cs
  | Estimator.Sample v -> check_sample s v
  | Estimator.Samples vs ->
      List.fold_left
        (fun acc v -> match acc with Pass -> check_sample s v | f -> f)
        Pass vs
  | Estimator.Shares (ea, eb) -> check_shares s ~seed (ea, eb)

let check_answer s ~seed (q : Engine.query) (answer : Engine.answer) =
  let shape =
    match answer with
    | Engine.Scalar _ -> "scalar"
    | Engine.Vector _ -> "vector"
    | Engine.Ranked _ -> "ranked"
    | Engine.Entry_set _ -> "entry_set"
    | Engine.L0_samples _ -> "l0_samples"
    | Engine.L1_samples _ -> "l1_samples"
    | Engine.Shares _ -> "shares"
  in
  accounted s ~shape @@ fun () ->
  match (q, answer) with
  | Engine.Norm_pow { p; eps }, Engine.Scalar x ->
      let slack = 2.0 +. (4.0 *. eps) in
      let sp =
        if p < 0.5 then { lo = l0_lo s; hi = l0_hi s; slack; integral = false; exact = None }
        else if p < 1.5 then { lo = s.l1; hi = s.l1; slack; integral = false; exact = None }
        else { lo = l2_lo s; hi = l2_hi s; slack = slack *. 2.0; integral = false; exact = None }
      in
      check_number_spec sp x
  | Engine.Frob_norm { eps }, Engine.Scalar x ->
      (* The Norm_pow p = 2 range: the statistic is the same Σ C_rc². *)
      let slack = (2.0 +. (4.0 *. eps)) *. 2.0 in
      check_number_spec
        { lo = l2_lo s; hi = l2_hi s; slack; integral = false; exact = None }
        x
  | Engine.Linf { kappa }, Engine.Scalar x ->
      check_number_spec
        {
          lo = linf_lo s /. kappa;
          hi = s.cap;
          slack = 2.0;
          integral = false;
          exact = None;
        }
        x
  | Engine.Row_norms { p; _ }, Engine.Vector v ->
      let hi = if p >= 1.5 then l2_hi s else s.l1 in
      let rec go i =
        if i >= Array.length v then Pass
        else if Float.is_nan v.(i) then go (i + 1) (* uncovered row (degraded) *)
        else if not (Float.is_finite v.(i)) then
          fail "finite" "row %d norm %h not finite" i v.(i)
        else if v.(i) < -1e-9 then fail "non_negative" "row %d norm %g" i v.(i)
        else if v.(i) > (hi *. 4.0) +. 1e-6 then
          fail "range_high" "row %d norm %g above %g" i v.(i) (hi *. 4.0)
        else go (i + 1)
      in
      go 0
  | Engine.Top_rows { p; _ }, Engine.Ranked rs ->
      let hi = (if p >= 1.5 then l2_hi s else s.l1) *. 4.0 in
      let rec go = function
        | [] -> Pass
        | (i, v) :: rest ->
            if i < 0 || i >= s.out_rows then
              fail "index_bounds" "ranked row %d outside %d rows" i s.out_rows
            else if not (Float.is_finite v) then
              fail "finite" "row %d score %h not finite" i v
            else if v < -1e-9 then fail "non_negative" "row %d score %g" i v
            else if v > hi +. 1e-6 then
              fail "range_high" "row %d score %g above %g" i v hi
            else go rest
      in
      go rs
  | Engine.Heavy_hitters { phi; eps }, Engine.Entry_set cs ->
      check_coords ~phi ~eps s cs
  | Engine.L0_sample _, Engine.L0_samples arr ->
      Array.fold_left
        (fun acc v ->
          match acc with
          | Pass ->
              check_l0_sample s
                (Option.map
                   (fun (smp : L0_sampling.sample) ->
                     (smp.L0_sampling.row, smp.L0_sampling.col, smp.L0_sampling.value))
                   v)
          | f -> f)
        Pass arr
  | Engine.L1_sample _, Engine.L1_samples arr ->
      Array.fold_left
        (fun acc v ->
          match acc with
          | Pass ->
              check_l1_sample s
                (Option.map
                   (fun (smp : L1_sampling.sample) ->
                     ( smp.L1_sampling.row,
                       smp.L1_sampling.col,
                       smp.L1_sampling.witness ))
                   v)
          | f -> f)
        Pass arr
  | Engine.Exact_product, Engine.Shares (ea, eb) -> check_shares s ~seed (ea, eb)
  | _ -> Pass (* shape/query mismatch is the merge layer's business *)

(* --- corruption: the attack half ---------------------------------------- *)

let scale_factor = 16.0

let corrupt_num mode g x =
  match (mode : Fault.byzantine_mode) with
  | Fault.Scale -> x *. scale_factor
  | Fault.Sign_flip -> -.x
  | Fault.Swap -> if Float.abs x < 1e-12 then 1e6 else 1.0 /. x
  | Fault.Garbage -> 1e12 *. (1.0 +. Prng.float g)

let corrupt_entry mode g (r, c, v) =
  match (mode : Fault.byzantine_mode) with
  | Fault.Scale -> (r, c, v * 16)
  | Fault.Sign_flip -> (r, c, -v)
  | Fault.Swap -> (c, r, v)
  | Fault.Garbage ->
      let big = 1_000_000 + Prng.int g 1_000_000 in
      (big, big, 1 + Prng.int g 1_000_000)

let corrupt_coord mode g (r, c) =
  match (mode : Fault.byzantine_mode) with
  | Fault.Scale -> (r + 1, c)
  | Fault.Sign_flip -> (-r - 1, c)
  | Fault.Swap -> (c, r)
  | Fault.Garbage -> (1_000_000 + Prng.int g 1_000_000, Prng.int g 1_000_000)

let corrupt mode g (answer : Estimator.comparable) : Estimator.comparable =
  match answer with
  | Estimator.Number x -> Estimator.Number (corrupt_num mode g x)
  | Estimator.Leveled (est, level) -> (
      match mode with
      | Fault.Swap ->
          (* swap the estimate and the level — fields trade places *)
          Estimator.Leveled (float_of_int level, int_of_float (Float.min est 64.0))
      | _ -> Estimator.Leveled (corrupt_num mode g est, level))
  | Estimator.Coords cs -> Estimator.Coords (List.map (corrupt_coord mode g) cs)
  | Estimator.Sample v ->
      Estimator.Sample (Option.map (corrupt_entry mode g) v)
  | Estimator.Samples vs ->
      Estimator.Samples (List.map (Option.map (corrupt_entry mode g)) vs)
  | Estimator.Shares (ea, eb) -> (
      match ea with
      | [] -> Estimator.Shares (ea, List.map (corrupt_entry mode g) eb)
      | _ -> Estimator.Shares (List.map (corrupt_entry mode g) ea, eb))

let corrupt_answer mode g (answer : Engine.answer) : Engine.answer =
  match answer with
  | Engine.Scalar x -> Engine.Scalar (corrupt_num mode g x)
  | Engine.Vector v -> Engine.Vector (Array.map (corrupt_num mode g) v)
  | Engine.Ranked rs ->
      Engine.Ranked (List.map (fun (i, v) -> (i, corrupt_num mode g v)) rs)
  | Engine.Entry_set cs -> Engine.Entry_set (List.map (corrupt_coord mode g) cs)
  | Engine.L0_samples arr ->
      Engine.L0_samples
        (Array.map
           (Option.map (fun (smp : L0_sampling.sample) ->
                let r, c, v =
                  corrupt_entry mode g
                    (smp.L0_sampling.row, smp.L0_sampling.col, smp.L0_sampling.value)
                in
                { L0_sampling.row = r; col = c; value = v }))
           arr)
  | Engine.L1_samples arr ->
      Engine.L1_samples
        (Array.map
           (Option.map (fun (smp : L1_sampling.sample) ->
                let r, c, w =
                  corrupt_entry mode g
                    ( smp.L1_sampling.row,
                      smp.L1_sampling.col,
                      smp.L1_sampling.witness )
                in
                { L1_sampling.row = r; col = c; witness = w }))
           arr)
  | Engine.Shares (ea, eb) -> (
      match corrupt mode g (Estimator.Shares (ea, eb)) with
      | Estimator.Shares (ea', eb') -> Engine.Shares (ea', eb')
      | _ -> answer)

(* --- replica voting ------------------------------------------------------ *)

type family =
  | Exact
  | Numeric of { ratio : float }
  | Level of { ratio : float }
  | Subset
  | Sampled

let family_of = function
  | "l1_exact" | "trivial" | "joins equality" | "matprod" -> Exact
  | "lp p=0" | "lp p=1" | "cohen_baseline" -> Numeric { ratio = 6.0 }
  | "lp oneround p=2" | "srht" | "session" | "linf_general" ->
      Numeric { ratio = 8.0 }
  | "joins disjointness" | "joins atleast" -> Numeric { ratio = 8.0 }
  | "linf_binary" -> Level { ratio = 6.0 }
  | "linf_kappa" -> Level { ratio = 10.0 }
  | "hh_binary" | "hh_countsketch" | "hh_general" -> Subset
  | "l0_sampling" | "l1_sampling" -> Sampled
  | _ -> Numeric { ratio = infinity }

(* Additive tolerance for families whose honest spread is absolute, not
   multiplicative (disjointness counts cluster near n*m; threshold-join
   counts near 0). *)
let numeric_atol s =
  match s.sname with
  | "joins disjointness" | "joins atleast" -> (3.0 *. l0_hi s) +. 1.0
  | _ -> 0.0

(* Shares at different seeds split differently but reconstruct the same
   product: canonicalise to the merged entry list before equality. *)
let reconstruct_shares (ea, eb) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r, c, v) ->
      let k = (r, c) in
      Hashtbl.replace tbl k (v + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    (List.rev_append ea eb);
  Hashtbl.fold (fun (r, c) v acc -> if v = 0 then acc else (r, c, v) :: acc) tbl []
  |> List.sort compare

let canonical s (c : Estimator.comparable) =
  match (s.sname, c) with
  | "matprod", Estimator.Shares (ea, eb) ->
      Estimator.Shares (reconstruct_shares (ea, eb), [])
  | _ -> c

let ratio_consistent ~ratio ~atol v1 v2 =
  Float.is_finite v1 && Float.is_finite v2 && v1 >= -1e-9 && v2 >= -1e-9
  && (Float.abs (v1 -. v2) <= atol +. (1e-9 *. (1.0 +. Float.abs v1 +. Float.abs v2))
     || (v1 > 0.0 && v2 > 0.0 && Float.max v1 v2 /. Float.min v1 v2 <= ratio))

let consistent s c1 c2 =
  match (family_of s.sname, c1, c2) with
  | Exact, _, _ -> canonical s c1 = canonical s c2
  | Numeric { ratio }, Estimator.Number v1, Estimator.Number v2 ->
      ratio_consistent ~ratio ~atol:(numeric_atol s) v1 v2
  | Level { ratio }, Estimator.Leveled (e1, _), Estimator.Leveled (e2, _) ->
      ratio_consistent ~ratio ~atol:0.0 e1 e2
  | (Subset | Sampled), Estimator.Coords _, Estimator.Coords _
  | (Subset | Sampled), Estimator.Sample _, Estimator.Sample _
  | (Subset | Sampled), Estimator.Samples _, Estimator.Samples _ ->
      true (* individually adjudicated by [check]; replicas never clash *)
  | _, _, _ -> false (* mismatched shapes are never consistent *)

type vote_result = {
  chosen : int;
  chosen_answer : Estimator.comparable;
  agreed : int list;
  outvoted : (int * string) list;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let vote s (replicas : (int * Estimator.comparable) list) =
  let arr = Array.of_list replicas in
  let n = Array.length arr in
  if n = 0 then None
  else if n > 16 then invalid_arg "Verify.vote: more than 16 replicas"
  else begin
    let ok = Array.make_matrix n n true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let c = consistent s (snd arr.(i)) (snd arr.(j)) in
        ok.(i).(j) <- c;
        ok.(j).(i) <- c
      done
    done;
    (* Largest pairwise-consistent subset with a strict majority; the
       smallest qualifying mask prefers low replica indices on ties. *)
    let best = ref 0 in
    for mask = 1 to (1 lsl n) - 1 do
      if popcount mask > popcount !best then begin
        let pairwise = ref true in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then
            for j = i + 1 to n - 1 do
              if mask land (1 lsl j) <> 0 && not ok.(i).(j) then pairwise := false
            done
        done;
        if !pairwise && 2 * popcount mask > n then best := mask
      end
    done;
    if !best = 0 then None
    else begin
      let winners = ref [] and losers = ref [] in
      for i = n - 1 downto 0 do
        if !best land (1 lsl i) <> 0 then winners := i :: !winners
        else losers := i :: !losers
      done;
      let rep_slot =
        match (family_of s.sname, !winners) with
        | Numeric _, (_ :: _ :: _ as ws) -> (
            (* The Boosting tie-break: the winner nearest the median of
               the winning values keeps a real replica's answer as the
               representative. *)
            let vals =
              List.filter_map
                (fun i ->
                  match snd arr.(i) with
                  | Estimator.Number v -> Some (i, v)
                  | _ -> None)
                ws
            in
            match vals with
            | [] -> List.hd ws
            | _ ->
                let med =
                  Stats.median (Array.of_list (List.map snd vals))
                in
                fst
                  (List.fold_left
                     (fun (bi, bd) (i, v) ->
                       let d = Float.abs (v -. med) in
                       if d < bd then (i, d) else (bi, bd))
                     (fst (List.hd vals), infinity)
                     vals))
        | _, ws -> List.hd ws
      in
      let replica_of i = fst arr.(i) in
      Some
        {
          chosen = replica_of rep_slot;
          chosen_answer = snd arr.(rep_slot);
          agreed = List.map replica_of !winners;
          outvoted =
            List.map
              (fun i ->
                ( replica_of i,
                  Printf.sprintf
                    "replica disagrees with the %d-of-%d majority clique"
                    (List.length !winners) n ))
              !losers;
        }
    end
  end
