(* A lazily-spawned pool of worker domains for embarrassingly parallel
   row fan-out (docs/PERFORMANCE.md).

   Design constraints, in order:
   - determinism: results are written into their index slot, so the output
     of [init]/[parallel_for] is independent of the schedule. Callers must
     pass closures that are pure with respect to shared state (the planned
     sketch kernels are: plans are read-only tables).
   - zero cost at size 1: the default pool size is 1 and every entry point
     short-circuits to the plain sequential loop, so single-domain runs
     execute exactly the code they always did.
   - lazy spawning: worker domains are spawned on the first parallel call,
     never at module load, and persist for the process lifetime. *)

let env_size () =
  match Sys.getenv_opt "MATPROD_DOMAINS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let requested : int option ref = ref None

let set_size n =
  if n < 1 then invalid_arg "Pool.set_size: need >= 1";
  requested := Some n

let size () = match !requested with Some n -> n | None -> env_size ()

(* One job at a time: the pool is driven from the main domain only. Chunks
   of the index space are handed out through an atomic cursor, so load
   balancing is dynamic but the output layout is fixed. *)
type job = {
  f : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;
  mutable pending : int; (* workers that have not finished this job *)
  mutable err : exn option; (* first exception raised by any domain *)
}

let m = Mutex.create ()
let cv = Condition.create ()
let current : job option ref = ref None
let generation = ref 0
let spawned = ref 0
let stopping = ref false
let handles : unit Domain.t list ref = ref []

let record_error job e =
  Mutex.lock m;
  if job.err = None then job.err <- Some e;
  Mutex.unlock m;
  (* Drain the cursor so every domain stops grabbing work promptly. *)
  Atomic.set job.next job.n

let run_chunks job =
  let rec go () =
    let lo = Atomic.fetch_and_add job.next job.chunk in
    if lo < job.n then begin
      let hi = min job.n (lo + job.chunk) in
      (try
         for i = lo to hi - 1 do
           job.f i
         done
       with e -> record_error job e);
      go ()
    end
  in
  go ()

let worker_loop g0 =
  (* [g0] is the generation at spawn time: a worker born while earlier
     jobs have already run must wait for the NEXT published job, not wake
     on the stale generation gap and find [current = None]. *)
  let seen = ref g0 in
  let rec loop () =
    Mutex.lock m;
    while !generation = !seen && not !stopping do
      Condition.wait cv m
    done;
    if !stopping then Mutex.unlock m (* drain: fall off the loop *)
    else begin
      seen := !generation;
      let job = Option.get !current in
      Mutex.unlock m;
      (try run_chunks job with e -> record_error job e);
      Mutex.lock m;
      job.pending <- job.pending - 1;
      if job.pending = 0 then Condition.broadcast cv;
      Mutex.unlock m;
      loop ()
    end
  in
  loop ()

(* Workers park until a job is published or {!shutdown} drains them. Spawn
   only the deficit, so growing the size later tops the pool up. The
   generation is read under the lock so every new worker joins at a
   well-defined point strictly before the next job is published. *)
let ensure_workers want =
  if !spawned < want then begin
    Mutex.lock m;
    let g0 = !generation in
    Mutex.unlock m;
    while !spawned < want do
      handles := Domain.spawn (fun () -> worker_loop g0) :: !handles;
      incr spawned
    done
  end

(* Drain and join every worker. Driven from the main domain like every
   other entry point, so it cannot race a running [parallel_for]; a later
   parallel call simply respawns a fresh pool. *)
let shutdown () =
  if !spawned > 0 then begin
    Mutex.lock m;
    stopping := true;
    Condition.broadcast cv;
    Mutex.unlock m;
    List.iter Domain.join !handles;
    handles := [];
    spawned := 0;
    Mutex.lock m;
    stopping := false;
    Mutex.unlock m
  end

let parallel_for ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative count";
  let d = size () in
  if d <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    ensure_workers (d - 1);
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None ->
          (* ~8 chunks per worker keeps load balancing dynamic, but a
             floor of 32 stops short jobs from degenerating into per-item
             handouts: at protocol fan-out sizes (hundreds of rows, a few
             µs each) tiny chunks spend more time on the atomic cursor
             and wake-ups than on rows (bench P1, pool fan-out). *)
          max 32 (n / ((!spawned + 1) * 8))
    in
    let job = { f; n; chunk; next = Atomic.make 0; pending = 0; err = None } in
    Mutex.lock m;
    current := Some job;
    job.pending <- !spawned;
    incr generation;
    Condition.broadcast cv;
    Mutex.unlock m;
    run_chunks job;
    Mutex.lock m;
    while job.pending > 0 do
      Condition.wait cv m
    done;
    current := None;
    Mutex.unlock m;
    match job.err with Some e -> raise e | None -> ()
  end

let init ?chunk n f =
  if n < 0 then invalid_arg "Pool.init: negative count"
  else if n = 0 then [||]
  else if size () <= 1 || n = 1 then Array.init n f
  else begin
    (* Slot 0 is computed up front to seed the result array; the remaining
       slots are filled in parallel, each at its own index, so the array
       is elementwise identical to [Array.init n f]. *)
    let out = Array.make n (f 0) in
    parallel_for ?chunk (n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let map_sum ?chunk n f =
  let parts = init ?chunk n f in
  Array.fold_left ( +. ) 0.0 parts
