type t = { coeffs : int array }

let create rng ~k =
  if k < 1 then invalid_arg "Hashing.create: k must be >= 1";
  let coeffs =
    Array.init k (fun i ->
        let c = Prng.int rng Field31.p in
        (* Leading coefficient nonzero keeps the polynomial at full degree. *)
        if i = k - 1 && c = 0 then 1 else c)
  in
  { coeffs }

let degree t = Array.length t.coeffs

let value t key =
  if key < 0 || key >= Field31.p then invalid_arg "Hashing.value: key range";
  Field31.poly_eval t.coeffs key

(* A bijective finalizer (splitmix64's mixer) applied to the polynomial
   value before reducing it to a bucket or a float. A bijection preserves
   k-wise independence while destroying the arithmetic-progression
   structure a linear polynomial taken mod [buckets] would otherwise
   exhibit — without this, occupancy-based estimators are badly biased. *)
let mix v =
  let open Int64 in
  let z = of_int v in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)

let bucket t ~buckets key =
  if buckets <= 0 then invalid_arg "Hashing.bucket: buckets";
  mix (value t key) mod buckets

let sign t key = if value t key land 1 = 1 then 1 else -1

(* Fingerprint coefficients MUST be mixed: with a raw degree-(k−1)
   polynomial, Σ_{i∈S} c(i) is a function of S's power sums alone, so e.g.
   {19, 29} and {15, 33} (equal size, equal sum) get equal fingerprints
   under EVERY linear hash, and a 1-sparse-recovery cell holding equal
   values at i and j with i+j even always verifies as a singleton at
   (i+j)/2. The finalizer breaks that algebra. *)
let field_coeff t key =
  let v = mix (value t key) mod Field31.p in
  if v = 0 then 1 else v

let float01 t key = float_of_int (mix (value t key)) *. 0x1.0p-62

(* Tabulation: evaluate a derived map once per key of a bounded domain.
   Each table entry is produced by the exact function it replaces, so a
   lookup is bit-identical to an on-the-fly evaluation — the plan/apply
   sketch kernels rely on that to keep transcripts and journals stable. *)

let check_dim name dim = if dim <= 0 then invalid_arg ("Hashing." ^ name ^ ": dim")

let tabulate_buckets t ~buckets ~dim =
  check_dim "tabulate_buckets" dim;
  if buckets <= 0 then invalid_arg "Hashing.tabulate_buckets: buckets";
  Array.init dim (fun key -> bucket t ~buckets key)

let tabulate_signs t ~dim =
  check_dim "tabulate_signs" dim;
  Array.init dim (fun key -> sign t key)

let tabulate_sign_floats t ~dim =
  check_dim "tabulate_sign_floats" dim;
  Array.init dim (fun key -> float_of_int (sign t key))

let tabulate_field_coeffs t ~dim =
  check_dim "tabulate_field_coeffs" dim;
  Array.init dim (fun key -> field_coeff t key)

let tabulate_float01 t ~dim =
  check_dim "tabulate_float01" dim;
  Array.init dim (fun key -> float01 t key)
