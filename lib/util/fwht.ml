(* In-place fast Walsh–Hadamard transform (docs/SKETCHES.md, SRHT).

   The transform is the unnormalised Hadamard matrix H_n (entries ±1,
   H[s,i] = (-1)^popcount(s AND i)) applied in O(n log n) butterflies
   over a power-of-two buffer. Two implementations share one operation
   tree:

   - [naive]: the textbook iterative radix-2 ladder, the reference the
     qcheck laws are stated against.
   - [transform]: the production kernel. Levels whose butterfly span
     fits in L1 run block-local first (butterflies at stride < block
     touch only their own aligned block, so reordering across blocks is
     exact), then the remaining large-stride levels sweep the whole
     buffer; both stages fuse pairs of levels into radix-4 passes.

   Bit-identity of the two: a radix-4 pass computes (u0+u1)+(u2+u3) etc.
   — exactly the grouping two consecutive radix-2 levels produce — and
   blocks at the same stride touch disjoint data, so every output value
   has an identical floating-point computation DAG in both kernels. The
   equivalence suite (test_plan) checks this with Int64.bits_of_float
   equality on random float inputs, no integrality assumption.

   Buffers are Bigarray scratch (float64, C layout): flat data, no
   per-element boxing, reusable across rows so the hot path allocates
   nothing. *)

type scratch =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let next_pow2 n =
  if n < 1 then invalid_arg "Fwht.next_pow2: need n >= 1";
  let p = ref 1 in
  while !p < n do
    p := !p * 2
  done;
  !p

let is_pow2 n = n >= 1 && n land (n - 1) = 0

let scratch n =
  if not (is_pow2 n) then invalid_arg "Fwht.scratch: length must be 2^k";
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0.0;
  a

let check a ~n =
  if not (is_pow2 n) then invalid_arg "Fwht: n must be a power of two";
  if Bigarray.Array1.dim a < n then invalid_arg "Fwht: scratch shorter than n"

(* The bigarray access primitives specialise to direct unboxed float64
   loads/stores only when applied syntactically at a statically-known
   element type — an eta-reduced alias would force every access through
   the generic boxed path, an order of magnitude slower. Hence the
   explicit [(a : scratch)] annotations and fully-applied primitives. *)

(* One radix-2 level at stride [len] over [lo, lo+span). *)
let level2 (a : scratch) ~lo ~span ~len =
  let i = ref lo in
  let stop = lo + span in
  while !i < stop do
    for j = !i to !i + len - 1 do
      let u = Bigarray.Array1.unsafe_get a j
      and v = Bigarray.Array1.unsafe_get a (j + len) in
      Bigarray.Array1.unsafe_set a j (u +. v);
      Bigarray.Array1.unsafe_set a (j + len) (u -. v)
    done;
    i := !i + (2 * len)
  done

(* Levels len0, 2·len0, …, span/2 over [lo, lo+span), radix-4 fused. *)
let sweep (a : scratch) ~lo ~span ~len0 =
  let len = ref len0 in
  while 4 * !len <= span do
    let l = !len in
    let i = ref lo in
    let stop = lo + span in
    while !i < stop do
      for j = !i to !i + l - 1 do
        let u0 = Bigarray.Array1.unsafe_get a j
        and u1 = Bigarray.Array1.unsafe_get a (j + l)
        and u2 = Bigarray.Array1.unsafe_get a (j + (2 * l))
        and u3 = Bigarray.Array1.unsafe_get a (j + (3 * l)) in
        let s01 = u0 +. u1
        and d01 = u0 -. u1
        and s23 = u2 +. u3
        and d23 = u2 -. u3 in
        Bigarray.Array1.unsafe_set a j (s01 +. s23);
        Bigarray.Array1.unsafe_set a (j + l) (d01 +. d23);
        Bigarray.Array1.unsafe_set a (j + (2 * l)) (s01 -. s23);
        Bigarray.Array1.unsafe_set a (j + (3 * l)) (d01 -. d23)
      done;
      i := !i + (4 * l)
    done;
    len := 4 * l
  done;
  if 2 * !len <= span then level2 a ~lo ~span ~len:!len

let naive a ~n =
  check a ~n;
  let len = ref 1 in
  while !len < n do
    level2 a ~lo:0 ~span:n ~len:!len;
    len := 2 * !len
  done

(* 4096 float64 = 32 KiB: an aligned block plus the write stream fits
   typical L1 data caches. *)
let block_floats = 4096

let transform a ~n =
  check a ~n;
  if n <= block_floats then sweep a ~lo:0 ~span:n ~len0:1
  else begin
    let b = ref 0 in
    while !b < n do
      sweep a ~lo:!b ~span:block_floats ~len0:1;
      b := !b + block_floats
    done;
    sweep a ~lo:0 ~span:n ~len0:block_floats
  end
