(** Deterministic domain pool for per-row sketch fan-out.

    The protocol drivers sketch n rows against one shared hash family —
    embarrassingly parallel work. This pool runs such loops across OCaml 5
    domains while keeping the output {e byte-identical} to the sequential
    path: every result lands in its own index slot and reductions fold in
    index order, so the schedule never shows in transcripts, journals, or
    golden outputs (docs/PERFORMANCE.md).

    The pool size defaults to [MATPROD_DOMAINS] (1 when unset or invalid
    — today's sequential path); {!set_size} (the CLI's [--domains])
    overrides it. Worker domains are spawned lazily on the first parallel
    call and persist for the process lifetime. At size 1 every entry point
    is exactly the plain sequential loop.

    Closures passed to the pool must not mutate shared state and must not
    consume [Prng] streams; the planned sketch kernels qualify (plans are
    read-only tables). {!Matprod_obs.Metrics} counters touched inside a
    parallel section are best-effort: racing increments may be lost (never
    torn), so enable multi-domain runs for speed, not for counter-exact
    accounting. *)

val size : unit -> int
(** Current pool size: the {!set_size} override, else [MATPROD_DOMAINS],
    else 1. *)

val set_size : int -> unit
(** Fix the pool size ([>= 1]); overrides the environment. Shrinking does
    not stop already-spawned workers — they idle (until {!shutdown}). *)

val shutdown : unit -> unit
(** Drain the pool: wake every idle worker, join all spawned domains, and
    reset to the unspawned state. Without it a long-lived process (the
    serve daemon) leaks one parked domain per worker and a SIGTERM
    teardown races their wake-ups. Idempotent, cheap when nothing was
    spawned, and {e not} a terminal state — the next parallel call lazily
    respawns a fresh pool. Must be called from the domain that drives the
    pool (no [parallel_for] may be in flight). *)

val parallel_for : ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)], in parallel when the pool
    size exceeds 1. Chunks of indices are handed out dynamically through
    an atomic cursor; [?chunk] sets the batch size per handout (default
    [max 32 (n/(domains*8))] — the floor keeps short fan-outs from
    degenerating into per-item handouts, bench P1). Chunking never
    affects results: each index writes its own slot. The first exception
    raised by any domain is re-raised on the caller after all domains
    quiesce. *)

val init : ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is elementwise identical to [Array.init n f], computed in
    parallel. [f] must be pure with respect to shared state. [?chunk] as
    in {!parallel_for}. *)

val map_sum : ?chunk:int -> int -> (int -> float) -> float
(** [map_sum n f = Σ_{i<n} f i], folded in index order so the float
    rounding matches the sequential accumulation loop bit for bit. *)
