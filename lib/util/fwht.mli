(** In-place fast Walsh–Hadamard transform over a reusable Bigarray
    scratch — the O(d log d) kernel behind the SRHT sketch family
    (docs/SKETCHES.md).

    The transform applied is the {e unnormalised} Hadamard matrix:
    entry [s,i] is (-1)^popcount(s AND i), so applying it twice scales
    by [n] and Σ_s (Hx)_s² = n·Σ_i x_i² exactly (Parseval). Both laws
    are qcheck-enforced in test_plan. *)

type scratch =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val next_pow2 : int -> int
(** Smallest power of two >= n (n >= 1). *)

val scratch : int -> scratch
(** [scratch n] allocates a zeroed buffer of length [n], which must be a
    power of two. Reuse it across rows: the transforms never allocate. *)

val transform : scratch -> n:int -> unit
(** Production kernel: cache-blocked, radix-4 fused. [n] must be a power
    of two and at most the scratch length; entries beyond [n] are
    untouched. Bit-identical to {!naive} on every input (identical
    floating-point operation tree), ~2x faster at large [n]. *)

val naive : scratch -> n:int -> unit
(** Reference radix-2 ladder the bit-identity law is stated against. *)
