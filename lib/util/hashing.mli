(** k-wise independent hash families over GF(2^31 − 1).

    A hash function is a random degree-(k−1) polynomial over {!Field31};
    evaluating it at a key gives a k-wise independent value in [0, p).
    Derived helpers map that value to buckets, to ±1 signs, or to field
    fingerprint coefficients. All constructors consume randomness from an
    explicit {!Prng.t}. *)

type t
(** A sampled hash function. *)

val create : Prng.t -> k:int -> t
(** [create rng ~k] samples a k-wise independent function ([k >= 1]).
    [k = 2] is pairwise, [k = 4] suffices for AMS sign hashes. *)

val degree : t -> int
(** Independence parameter [k] the function was created with. *)

val value : t -> int -> int
(** [value h key] in [0, 2^31 − 1); keys may be any non-negative int below
    the field modulus. *)

val bucket : t -> buckets:int -> int -> int
(** [bucket h ~buckets key] maps to [0, buckets). Bias is at most
    [buckets / 2^31], negligible for the bucket counts used here. *)

val sign : t -> int -> int
(** [sign h key] is ±1, determined by one bit of [value]. *)

val field_coeff : t -> int -> int
(** [field_coeff h key] is a nonzero field element usable as a fingerprint
    coefficient (value 0 is remapped to 1). The polynomial value is passed
    through a bijective finalizer first: raw polynomial coefficients make
    Σ_{i∈S} c(i) a function of S's power sums, so structured supports
    (equal size and sum) would collide under {e every} draw of the hash —
    a soundness hole for sparse-recovery verification and set
    fingerprints. *)

val float01 : t -> int -> float
(** [float01 h key] deterministic pseudo-uniform in [0,1) derived from
    [value]; used for consistent subsampling of coordinates. *)

(** {1 Tabulation}

    Precompute a derived map over the whole key domain [0, dim). Every
    table entry is produced by the function it replaces (same polynomial,
    same finalizer), so [table.(key)] is bit-identical to calling the
    function — the foundation of the plan/apply sketch kernels
    (docs/PERFORMANCE.md). Cost is O(dim) evaluations, amortised over
    every row sketched against the same hash family. *)

val tabulate_buckets : t -> buckets:int -> dim:int -> int array
(** [(tabulate_buckets h ~buckets ~dim).(key) = bucket h ~buckets key]. *)

val tabulate_signs : t -> dim:int -> int array
(** [(tabulate_signs h ~dim).(key) = sign h key] (±1). *)

val tabulate_sign_floats : t -> dim:int -> float array
(** Same as {!tabulate_signs} but as ±1.0 floats, ready for multiply–add
    inner loops with no int→float conversion per entry. *)

val tabulate_field_coeffs : t -> dim:int -> int array
(** [(tabulate_field_coeffs h ~dim).(key) = field_coeff h key]. *)

val tabulate_float01 : t -> dim:int -> float array
(** [(tabulate_float01 h ~dim).(key) = float01 h key]. *)
