type t = { rows : int; cols : int; tbl : (int, int) Hashtbl.t }

let rows t = t.rows
let cols t = t.cols

let key t i j = (i * t.cols) + j

let add_entry t i j v =
  if v <> 0 then
    let k = key t i j in
    match Hashtbl.find_opt t.tbl k with
    | None -> Hashtbl.replace t.tbl k v
    | Some old ->
        let s = old + v in
        if s = 0 then Hashtbl.remove t.tbl k else Hashtbl.replace t.tbl k s

let bool_product a b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Product.bool_product: dims";
  let t = { rows = Bmat.rows a; cols = Bmat.cols b; tbl = Hashtbl.create 1024 } in
  (* Packed AND+popcount kernel: C_{i,j} = |A_i ∩ (Bᵀ)_j| is one word-wise
     sweep over the inner dimension, and each nonzero entry is computed —
     and inserted — exactly once, instead of one hash probe per witness k. *)
  let pa = Bitmat.of_bmat a and pbt = Bitmat.of_bmat (Bmat.transpose b) in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      let v = Bitmat.product_entry ~a:pa ~bt:pbt i j in
      if v <> 0 then Hashtbl.replace t.tbl (key t i j) v
    done
  done;
  t

let int_product a b =
  if Imat.cols a <> Imat.rows b then invalid_arg "Product.int_product: dims";
  let t = { rows = Imat.rows a; cols = Imat.cols b; tbl = Hashtbl.create 1024 } in
  let at = Imat.transpose a in
  for k = 0 to Imat.cols a - 1 do
    let lefts = Imat.row at k in
    let rights = Imat.row b k in
    Array.iter
      (fun (i, va) ->
        Array.iter (fun (j, vb) -> add_entry t i j (va * vb)) rights)
      lefts
  done;
  t

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Product.get: out of range";
  Option.value ~default:0 (Hashtbl.find_opt t.tbl (key t i j))

let nnz t = Hashtbl.length t.tbl
let iter t f = Hashtbl.iter (fun k v -> f (k / t.cols) (k mod t.cols) v) t.tbl

let l1 t = Hashtbl.fold (fun _ v acc -> acc + abs v) t.tbl 0

let lp_pow t ~p =
  let acc = ref 0.0 in
  Hashtbl.iter
    (fun _ v ->
      acc := !acc +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p)
    t.tbl;
  !acc

let linf t = Hashtbl.fold (fun _ v acc -> max acc (abs v)) t.tbl 0

let argmax t =
  Hashtbl.fold
    (fun k v best ->
      match best with
      | Some (_, _, bv) when bv >= abs v -> best
      | _ -> Some (k / t.cols, k mod t.cols, abs v))
    t.tbl None

let entries t =
  let out = Array.make (nnz t) (0, 0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun k v ->
      out.(!i) <- (k / t.cols, k mod t.cols, v);
      incr i)
    t.tbl;
  out

let row_lp_pow t ~p =
  let acc = Array.make t.rows 0.0 in
  iter t (fun i _ v ->
      acc.(i) <-
        acc.(i) +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p);
  acc

let col_lp_pow t ~p =
  let acc = Array.make t.cols 0.0 in
  iter t (fun _ j v ->
      acc.(j) <-
        acc.(j) +. if p = 0.0 then 1.0 else Float.abs (float_of_int v) ** p);
  acc

let heavy_hitters t ~p ~phi =
  let total = lp_pow t ~p in
  let out = ref [] in
  iter t (fun i j v ->
      let w = Float.abs (float_of_int v) ** p in
      if w >= phi *. total then out := (i, j) :: !out);
  List.sort compare !out
