(** Algorithm 1 — the paper's headline protocol: a (1+ε)-approximation of
    ‖A·B‖_p^p for p ∈ [0, 2] in 2 rounds and Õ(n/ε) bits (Theorem 3.1).

    Round 1 (Bob → Alice): ℓp sketches of the rows of B at the coarse
    accuracy β = √ε, i.e. S·Bᵀ with S of height Õ(1/β²) = Õ(1/ε).
    Alice combines them into sketches of every row of C = A·B and gets a
    (1+β) estimate of each ‖C_{i,*}‖_p^p.

    Round 2 (Alice → Bob): Alice partitions the rows into (1+β)-geometric
    groups, samples rows with the group-calibrated probabilities
    p_ℓ = ρ/|G_ℓ| · ‖G̃_ℓ‖/‖C̃‖ (importance sampling ≈ proportional to
    estimated mass), and ships the sampled rows of A. Bob computes those
    rows of C exactly and returns the Horvitz–Thompson sum
    Σ ‖C_{i,*}‖_p^p / p_ℓ. *)

type params = {
  p : float;  (** norm order, in [0, 2]; 0 = set-intersection join size *)
  eps : float;  (** target relative error, in (0, 1] *)
  sketch_groups : int;
      (** median-boosting repetitions inside the round-1 sketch *)
  rho_const : float;
      (** expected number of sampled rows = rho_const/ε. The paper sets the
          constant to 10⁴ for the formal proof; the default here is tuned
          empirically (any constant gives the same asymptotics). *)
}

val default_params : ?p:float -> eps:float -> unit -> params
(** p defaults to 0 (join size); sketch_groups 5; rho_const 200. *)

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float
(** Estimate of ‖A·B‖_p^p. Requires cols a = rows b. *)

val estimate_row_norms :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float array
(** The round-1 sub-protocol on its own: (1+β)-estimates of every
    ‖C_{i,*}‖_p^p on Alice's side. Exposed for §5.2 (step 1) and tests. *)

val round2 :
  Matprod_comm.Ctx.t ->
  p:float ->
  beta:float ->
  rho_const:float ->
  est:float array ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float
(** The sampling round on its own, given round-1 row estimates [est] at
    accuracy β: group, sample ≈ rho_const/β² rows, ship, Horvitz–Thompson.
    Used by [run] (with β = √ε) and by {!Session.refine}. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (float * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run]: wire failures, decode failures, and precondition
    breaches come back as typed errors instead of exceptions (see
    {!Outcome}). *)
