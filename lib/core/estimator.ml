module Ctx = Matprod_comm.Ctx
module Bmat = Matprod_matrix.Bmat

type comparable =
  | Number of float
  | Coords of (int * int) list
  | Sample of (int * int * int) option
  | Samples of (int * int * int) option list
  | Shares of (int * int * int) list * (int * int * int) list
  | Leveled of float * int

type cost = { bits : float; rounds : int }

module type S = sig
  type query
  type answer

  val name : string
  val describe : string
  val default_query : query
  val cost_model : query -> n:int -> cost
  val run : Ctx.t -> query -> a:Bmat.t -> b:Bmat.t -> answer

  val run_safe :
    Ctx.t ->
    query ->
    a:Bmat.t ->
    b:Bmat.t ->
    (answer * Outcome.diagnostics, Outcome.error) result

  val comparable : answer -> comparable
end

type packed = (module S)

let make (type q r) ~name ~describe ~(default : q) ~cost
    ~(comparable : r -> comparable)
    (run : Ctx.t -> q -> a:Bmat.t -> b:Bmat.t -> r) : packed =
  (module struct
    type query = q
    type answer = r

    let name = name
    let describe = describe
    let default_query = default
    let cost_model = cost
    let run = run
    let run_safe ctx query ~a ~b = Outcome.capture ctx (fun () -> run ctx query ~a ~b)
    let comparable = comparable
  end)

let name (module E : S) = E.name
let describe (module E : S) = E.describe
let default_cost (module E : S) ~n = E.cost_model E.default_query ~n

let run_default (module E : S) ctx ~a ~b =
  E.comparable (E.run ctx E.default_query ~a ~b)

let run_default_safe (module E : S) ctx ~a ~b =
  Result.map
    (fun (ans, d) -> (E.comparable ans, d))
    (E.run_safe ctx E.default_query ~a ~b)

let pp_entry ppf (i, j, v) = Format.fprintf ppf "(%d, %d) = %d" i j v

let pp_sample ppf = function
  | None -> Format.pp_print_string ppf "(none)"
  | Some e -> pp_entry ppf e

let pp_comparable ppf = function
  | Number x -> Format.fprintf ppf "%.6g" x
  | Coords cs ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (i, j) -> Format.fprintf ppf "(%d, %d)" i j))
        cs
  | Sample s -> pp_sample ppf s
  | Samples ss ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_sample)
        ss
  | Shares (alice, bob) ->
      Format.fprintf ppf "alice %d entries + bob %d entries"
        (List.length alice) (List.length bob)
  | Leveled (x, level) -> Format.fprintf ppf "%.6g (level %d)" x level
