(** Theorem 3.2 — ℓ0-sampling on C = A·B: output a (near-)uniformly random
    nonzero entry of the product, in 1 round and Õ(n/ε²) bits.

    Alice ships, for every inner index k, a linear ℓ0 sketch and an
    ℓ0-sampler sketch of her column A_{*,k}. Since C_{*,j} = Σ_k B_{k,j}·
    A_{*,k}, Bob combines them into (i) (1+ε) estimates of every column's
    ‖C_{*,j}‖₀, from which he samples a column ∝ its support size, and
    (ii) an ℓ0-sampler for the chosen column, from which he draws the row. *)

type params = {
  eps : float;  (** column-norm estimation accuracy *)
  sketch_groups : int;
  sampler_s : int;  (** per-level recovery budget of the samplers *)
}

val default_params : eps:float -> params

type sample = { row : int; col : int; value : int }

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  sample option
(** [None] iff C = 0 or (rarely) the sampler failed. [value] is the exact
    C_{row,col}, recovered by the sampler. *)

val run_many :
  Matprod_comm.Ctx.t ->
  params ->
  count:int ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  sample option array
(** [count] independent samples from one message: the column-norm sketches
    are shipped once and amortised over [count] independent sampler
    structures — still 1 round, Õ(n/ε² + count·n) bits instead of
    count times the full cost. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (sample option * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run] (see {!Outcome}). *)

val run_many_safe :
  Matprod_comm.Ctx.t ->
  params ->
  count:int ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (sample option array * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run_many] (see {!Outcome}). *)
