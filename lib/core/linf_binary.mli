(** Algorithm 2 — (2+ε)-approximation of ‖A·B‖∞ for binary matrices in
    3 speaking phases and Õ(n^1.5/ε) bits (Theorem 4.1).

    Alice assigns every 1-entry of A a geometric level (nested subsamples
    A⁰ ⊇ A¹ ⊇ … with survival rate 1/(1+ε) per level) and ships all levels'
    column sums; Bob finds the first level ℓ* at which ‖C^ℓ‖₁ drops below
    the threshold γ·n·m. Then, per inner index k, the party whose side of
    the rank-1 contribution is smaller ships its index set, after which
    Alice and Bob hold C_A + C_B = C^{ℓ*} and output
    max(‖C_A‖∞, ‖C_B‖∞)/p_{ℓ*} — a (2+ε)-approximation because the max
    entry is split across at most the two shares. *)

type params = {
  eps : float;
  gamma_const : float;
      (** threshold multiplier: γ = gamma_const·ln(n)/ε². The paper proves
          with 10⁴; smaller constants work empirically and let the
          subsampling actually engage at laptop scales. *)
}

val default_params : eps:float -> params

type result = {
  estimate : float;  (** the (2+ε)-approximation of ‖A·B‖∞ *)
  level : int;  (** chosen subsampling level ℓ* *)
  p_level : float;  (** survival probability at ℓ* *)
}

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  result

val run_with :
  Matprod_comm.Ctx.t ->
  base:float ->
  threshold:float ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  result
(** The engine with explicit knobs: per-level survival rate 1/[base] and
    absolute ‖C^ℓ‖₁ stopping [threshold]. Algorithm 3 reuses this with
    base = 2 and threshold = α·n·m/κ. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (result * Outcome.diagnostics, Outcome.error) Stdlib.result
(** Fail-safe [run] (see {!Outcome}). *)
