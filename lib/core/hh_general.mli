(** Algorithm 4 / Corollary 5.2 — ℓp-(ϕ, ε)-heavy-hitters of C = A·B for
    non-negative integer matrices, O(1) rounds, Õ(√ϕ/ε·n) bits.

    The output S satisfies HH^p_ϕ(C) ⊆ S ⊆ HH^p_{ϕ−ε}(C) with high
    probability: every entry with C_{i,j}^p ≥ ϕ‖C‖_p^p is present, nothing
    below (ϕ−ε)‖C‖_p^p appears.

    Plan: (1) estimate ‖C‖_p^p (exactly via Remark 2 for p = 1, via
    Algorithm 1 otherwise); (2) Alice downsamples each unit of mass of A
    binomially at rate β chosen so heavy entries keep Θ(log n) mass while
    ‖C^β‖₀ collapses to Õ(ϕ/ε²); (3) recover the now-sparse C^β additively
    shared via the distributed matrix product; (4) Alice ships her heavy
    share entries; Bob thresholds C' = C'_A + C_B at β·((ϕ−ε/2)‖C‖_p^p)^{1/p}.

    The paper states the algorithm for p = 1 and scales thresholds through
    |·|^p for general p; we do the same in the value domain. *)

type params = {
  p : float;  (** in (0, 2] *)
  phi : float;
  eps : float;  (** 0 < eps <= phi <= 1 *)
  beta_const : float;  (** sampling-rate numerator multiplier (paper: 10⁴) *)
  lp_eps : float;  (** accuracy of the step-1 norm estimate when p ≠ 1 *)
}

val default_params : ?p:float -> phi:float -> eps:float -> unit -> params

type outcome = {
  set : (int * int) list;  (** the output set S, sorted *)
  beta : float;  (** sampling rate used (1.0 = no subsampling) *)
  lpp : float;  (** the step-1 estimate of ‖C‖_p^p *)
  recovered_nnz : int;  (** ‖C^β‖₀ as recovered by the product protocol *)
}

val run_full :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  outcome
(** Requires non-negative matrices. *)

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (int * int) list
(** [run ctx p ~a ~b = (run_full ctx p ~a ~b).set]. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  ((int * int) list * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run] (see {!Outcome}). *)
