(** The uniform estimator interface every protocol driver is packaged
    behind.

    Historically each statistic was its own one-shot driver with an ad-hoc
    signature ([Lp_protocol.run] returns [float], [Matprod_protocol.run]
    returns shares, the heavy-hitter drivers return coordinate lists).
    {!S} gives them one shape — a query type, an answer type, a predicted
    {!cost}, and [run]/[run_safe] entry points over a binary workload — so
    generic machinery (the {!Registry}, the chaos gallery, the CLI, the
    batched engine's fallback paths) can treat "a protocol" as a value.

    The original per-driver [run]/[run_safe] functions remain the real
    implementations and the documented direct entry points; an estimator
    is a thin adapter over them (docs/API.md). *)

type comparable =
  | Number of float  (** scalar statistics: norms, join sizes *)
  | Coords of (int * int) list  (** coordinate sets: heavy hitters *)
  | Sample of (int * int * int) option
      (** one drawn entry, [(row, col, payload)]; the payload is the entry
          value (ℓ0) or the witness index (ℓ1) *)
  | Samples of (int * int * int) option list  (** a batch of drawn entries *)
  | Shares of (int * int * int) list * (int * int * int) list
      (** additively shared product: Alice's and Bob's sorted entries *)
  | Leveled of float * int
      (** an estimate together with the subsampling level that produced it *)
(** One structurally comparable answer type shared by every estimator, so
    a chaotic run can be checked [=] against its fault-free twin and a
    golden test can print any driver's output the same way. *)

type cost = { bits : float; rounds : int }
(** Predicted transcript cost: order-of-magnitude bits (the Õ bound with
    its log factors made concrete) and speaking phases. Advisory — the
    transcript is the ground truth. *)

(** The interface. [query] carries the accuracy/shape parameters (each
    driver's existing [params] type, typically); [answer] is the driver's
    native result, projected into {!comparable} by [comparable]. *)
module type S = sig
  type query
  type answer

  val name : string
  (** Registry key, unique. *)

  val describe : string
  (** One-line human description (paper reference included). *)

  val default_query : query
  (** The canonical small-instance query used by the chaos gallery, the
      journal byte-identity suite, and [matprod estimate]. *)

  val cost_model : query -> n:int -> cost
  (** Predicted cost on an n×n workload. *)

  val run :
    Matprod_comm.Ctx.t ->
    query ->
    a:Matprod_matrix.Bmat.t ->
    b:Matprod_matrix.Bmat.t ->
    answer
  (** Run over a binary workload (integer drivers lift via
      [Imat.of_bmat]). All randomness comes from the context, so equal
      seeds give equal answers — the property the chaos and journal
      galleries assert. *)

  val run_safe :
    Matprod_comm.Ctx.t ->
    query ->
    a:Matprod_matrix.Bmat.t ->
    b:Matprod_matrix.Bmat.t ->
    (answer * Outcome.diagnostics, Outcome.error) result
  (** [run] under the {!Outcome} trichotomy. *)

  val comparable : answer -> comparable
end

type packed = (module S)
(** An estimator as a first-class value — what the {!Registry} stores. *)

val make :
  name:string ->
  describe:string ->
  default:'q ->
  cost:('q -> n:int -> cost) ->
  comparable:('r -> comparable) ->
  (Matprod_comm.Ctx.t ->
  'q ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  'r) ->
  packed
(** Package a driver: [run_safe] is derived as [Outcome.capture] of [run],
    exactly the shape every hand-written driver [run_safe] has. *)

val name : packed -> string
val describe : packed -> string

val default_cost : packed -> n:int -> cost
(** {!S.cost_model} at the default query. *)

val run_default :
  packed ->
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  comparable
(** Run the default query and project the answer — the gallery entry
    point. *)

val run_default_safe :
  packed ->
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (comparable * Outcome.diagnostics, Outcome.error) result
(** Fail-safe {!run_default}. *)

val pp_comparable : Format.formatter -> comparable -> unit
