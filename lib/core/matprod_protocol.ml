module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Entry_map = Common.Entry_map

type shares = { alice : Entry_map.t; bob : Entry_map.t }

let run ctx ~a ~b =
  if Imat.cols a <> Imat.rows b then invalid_arg "Matprod_protocol: dims";
  let inner = Imat.cols a in
  let at = Imat.transpose a in
  let u = Array.init inner (fun k -> Array.length (Imat.row at k)) in
  let v = Array.init inner (fun k -> Array.length (Imat.row b k)) in
  (* Round 1: Alice announces her per-index support sizes. *)
  let u' = Ctx.a2b ctx ~label:"support sizes of A cols" Codec.uint_array u in
  (* Round 2: Bob replies with his sizes and ships his rows where his side
     is strictly smaller. *)
  let bob_rows =
    List.filter_map
      (fun k -> if v.(k) < u'.(k) && v.(k) > 0 then Some (k, Imat.row b k) else None)
      (List.init inner (fun k -> k))
  in
  let v', bob_rows' =
    Ctx.b2a ctx ~label:"B rows (smaller side)"
      (Codec.pair Codec.uint_array
         (Codec.list (Codec.pair Codec.uint Codec.sparse_int_vec)))
      (v, bob_rows)
  in
  (* Round 3: Alice ships her columns where her side is not larger. *)
  let alice_cols =
    List.filter_map
      (fun k -> if u.(k) <= v'.(k) && u.(k) > 0 && v'.(k) > 0 then
           Some (k, Imat.row at k)
         else None)
      (List.init inner (fun k -> k))
  in
  let alice_cols' =
    Ctx.a2b ctx ~label:"A cols (smaller side)"
      (Codec.list (Codec.pair Codec.uint Codec.sparse_int_vec))
      alice_cols
  in
  (* Alice's share covers the indices Bob shipped; Bob's the rest. *)
  let alice_share = Entry_map.create () in
  List.iter
    (fun (k, b_row) -> Entry_map.add_outer alice_share (Imat.row at k) b_row)
    bob_rows';
  let bob_share = Entry_map.create () in
  List.iter
    (fun (k, a_col) -> Entry_map.add_outer bob_share a_col (Imat.row b k))
    alice_cols';
  { alice = alice_share; bob = bob_share }

let run_safe ctx ~a ~b = Outcome.capture ctx (fun () -> run ctx ~a ~b)
