module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Imat = Matprod_matrix.Imat
module Lp = Matprod_sketch.Lp
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type t = {
  p : float;
  beta : float;
  a : Imat.t;
  b : Imat.t;
  est : float array; (* Alice's cached (1+beta) row-norm estimates *)
}

let establish ?(p = 0.0) ?(groups = 5) ctx ~beta ~a ~b =
  if not (p >= 0.0 && p <= 2.0) then invalid_arg "Session: p range";
  if not (beta > 0.0 && beta <= 1.0) then invalid_arg "Session: beta range";
  if Imat.cols a <> Imat.rows b then invalid_arg "Session: dims";
  let lp =
    Lp.create ctx.Ctx.public ~p ~eps:beta ~groups ~dim:(max 1 (Imat.cols b))
  in
  let plan = Lp.plan lp ~dim:(max 1 (Imat.cols b)) in
  let bob_sketches =
    Pool.init (Imat.rows b) (fun k -> Lp.sketch_with_plan lp plan (Imat.row b k))
  in
  let sketches =
    Ctx.b2a ctx ~label:"session: lp sketches of B rows"
      (Codec.array (Lp.wire lp)) bob_sketches
  in
  let est =
    Pool.init (Imat.rows a) (fun i ->
        Float.max 0.0
          (Lp.estimate_pow lp (Common.combine_sketches lp sketches (Imat.row a i))))
  in
  { p; beta; a; b; est }

let p t = t.p
let beta t = t.beta
let norm_pow t = Array.fold_left ( +. ) 0.0 t.est

let row_norm_pow t i =
  if i < 0 || i >= Array.length t.est then invalid_arg "Session.row_norm_pow";
  t.est.(i)

let top_rows t ~k =
  let idx = Array.init (Array.length t.est) (fun i -> (i, t.est.(i))) in
  Array.sort (fun (_, x) (_, y) -> Float.compare y x) idx;
  Array.to_list (Array.sub idx 0 (min k (Array.length idx)))

(* Algorithm 1's round 2, replayed over the cached round-1 estimates. *)
let refine ctx ?(rho_const = 200.0) t =
  Lp_protocol.round2 ctx ~p:t.p ~beta:t.beta ~rho_const ~est:t.est ~a:t.a
    ~b:t.b

let establish_safe ?p ?groups ctx ~beta ~a ~b =
  Outcome.capture ctx (fun () -> establish ?p ?groups ctx ~beta ~a ~b)

let refine_safe ctx ?rho_const t =
  Outcome.capture ctx (fun () -> refine ctx ?rho_const t)
