module Ctx = Matprod_comm.Ctx
module Channel = Matprod_comm.Channel
module Codec = Matprod_comm.Codec
module Fault = Matprod_comm.Fault
module Reliable = Matprod_comm.Reliable
module Transcript = Matprod_comm.Transcript

module Journal = Matprod_comm.Journal

type error =
  | Link_failure of { label : string; attempts : int }
  | Decode_failure of string
  | Precondition of string
  | Protocol_failure of string
  | Crashed of { party : Transcript.party; after_messages : int }
  | Budget_exhausted of { resource : string; spent : int; limit : int }
  | Byzantine_detected of { rank : int; replica : int; check : string }

let error_to_string = function
  | Link_failure { label; attempts } ->
      Printf.sprintf "link failure: %S unacknowledged after %d attempts" label
        attempts
  | Decode_failure m -> Printf.sprintf "decode failure: %s" m
  | Precondition m -> Printf.sprintf "precondition violated: %s" m
  | Protocol_failure m -> Printf.sprintf "protocol failure: %s" m
  | Crashed { party; after_messages } ->
      Printf.sprintf "%s crashed after %d messages"
        (Transcript.party_name party)
        after_messages
  | Budget_exhausted { resource; spent; limit } ->
      Printf.sprintf "budget exhausted: %d %s spent of %d allowed" spent
        resource limit
  | Byzantine_detected { rank; replica; check } ->
      Printf.sprintf
        "byzantine answer detected: worker %d replica %d violated %s" rank
        replica check

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* --- degraded success -------------------------------------------------- *)

type degradation = {
  survivors : int;
  parties : int;
  coverage : float;
  bound_factor : float;
}

type 'a graded = Full of 'a | Degraded of 'a * degradation

let degradation ~survivors ~parties ~coverage =
  if survivors < 0 || parties <= 0 || survivors > parties then
    invalid_arg "Outcome.degradation: need 0 <= survivors <= parties";
  if not (coverage > 0.0 && coverage <= 1.0) then
    invalid_arg "Outcome.degradation: coverage must be in (0, 1]";
  { survivors; parties; coverage; bound_factor = 1.0 /. coverage }

let graded_value = function Full v | Degraded (v, _) -> v
let is_degraded = function Full _ -> false | Degraded _ -> true

let degradation_to_string d =
  Printf.sprintf "%d/%d links, %.0f%% row coverage, bound x%.2f" d.survivors
    d.parties (100.0 *. d.coverage) d.bound_factor

let pp_graded pp_v ppf = function
  | Full v -> pp_v ppf v
  | Degraded (v, d) ->
      Format.fprintf ppf "%a [degraded: %s]" pp_v v (degradation_to_string d)

type diagnostics = {
  bits : int;
  rounds : int;
  retries : int;
  crc_rejects : int;
  faults_injected : int;
  waited : float;
}

let diagnostics_of_ctx ctx =
  let tr = Ctx.transcript ctx in
  let s = Ctx.wire_stats ctx in
  {
    bits = Transcript.total_bits tr;
    rounds = Transcript.rounds tr;
    retries = s.Channel.retries;
    crc_rejects = s.Channel.crc_rejects;
    faults_injected = Fault.total_injected s.Channel.faults;
    waited = s.Channel.waited +. s.Channel.faults.Fault.injected_delay;
  }

(* The catch list is deliberately narrow: the failure modes a hostile wire
   or a bad precondition can produce. Assertion failures, out-of-memory,
   stack overflow — genuine bugs — still escape. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Reliable.Link_failure { label; attempts } ->
      Error (Link_failure { label; attempts })
  | exception Codec.Decode_error m -> Error (Decode_failure m)
  | exception Fault.Party_crash { party; after_messages } ->
      Error (Crashed { party; after_messages })
  | exception Journal.Replay_mismatch { label; reason } ->
      Error
        (Protocol_failure
           (Printf.sprintf "journal replay mismatch at %S: %s" label reason))
  | exception Invalid_argument m -> Error (Precondition m)
  | exception Failure m -> Error (Protocol_failure m)

let capture ctx f =
  match guard f with
  | Ok v -> Ok (v, diagnostics_of_ctx ctx)
  | Error e -> Error e
