module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Imat = Matprod_matrix.Imat
module L0_sketch = Matprod_sketch.L0_sketch
module L0_sampler = Matprod_sketch.L0_sampler
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Trace = Matprod_obs.Trace

type params = { eps : float; sketch_groups : int; sampler_s : int }

let default_params ~eps = { eps; sketch_groups = 3; sampler_s = 12 }

type sample = { row : int; col : int; value : int }

let run_many ctx prm ~count ~a ~b =
  if Imat.cols a <> Imat.rows b then invalid_arg "L0_sampling: dims";
  if not (prm.eps > 0.0 && prm.eps <= 1.0) then
    invalid_arg "L0_sampling: eps range";
  if count < 1 then invalid_arg "L0_sampling: count";
  let inner = Imat.cols a and nrows = Imat.rows a in
  let sk =
    L0_sketch.create ctx.Ctx.public ~eps:prm.eps ~groups:prm.sketch_groups
      ~dim:(max 1 nrows)
  in
  let samplers =
    Array.init count (fun _ ->
        L0_sampler.create ctx.Ctx.public ~dim:(max 1 nrows) ~s:prm.sampler_s ())
  in
  let at = Imat.transpose a in
  let alice_cols = Array.init inner (fun k -> Imat.row at k) in
  let msg_sketches, msg_samplers =
    Trace.with_span ~name:"l0_sampling.sketch_build" (fun () ->
        let plan = L0_sketch.plan sk ~dim:(max 1 nrows) in
        ( Pool.init inner (fun k ->
              L0_sketch.sketch_with_plan sk plan alice_cols.(k)),
          Array.map
            (fun smp ->
              Pool.init inner (fun k -> L0_sampler.sketch smp alice_cols.(k)))
            samplers ))
  in
  (* One speaking phase: the column-norm sketches plus [count] independent
     sampler structures per column. *)
  let sketches =
    Ctx.a2b ctx ~label:"l0 sketches of A cols" (Codec.array Codec.uint_array)
      msg_sketches
  in
  let sampler_states =
    Array.mapi
      (fun t per_col ->
        Ctx.a2b ctx
          ~label:(Printf.sprintf "l0 samplers of A cols #%d" t)
          (Codec.array (L0_sampler.wire samplers.(t)))
          per_col)
      msg_samplers
  in
  (* Bob: estimate ||C_{*,j}||_0 for every output column j, once. *)
  let bt = Imat.transpose b in
  let col_est =
    Trace.with_span ~name:"l0_sampling.column_estimation" (fun () ->
        Pool.init (Imat.cols b) (fun j ->
            let acc = L0_sketch.empty sk in
            Array.iter
              (fun (k, v) ->
                L0_sketch.add_scaled sk ~dst:acc ~coeff:v sketches.(k))
              (Imat.row bt j);
            Float.max 0.0 (L0_sketch.estimate sk acc)))
  in
  let total = Array.fold_left ( +. ) 0.0 col_est in
  Array.init count (fun t ->
      if total <= 0.0 then None
      else begin
        (* Sample a column ∝ estimated support, then a row via sampler t. *)
        let target = Prng.float ctx.Ctx.bob *. total in
        let j = ref 0 and acc = ref col_est.(0) in
        while !acc < target && !j < Imat.cols b - 1 do
          incr j;
          acc := !acc +. col_est.(!j)
        done;
        let j = !j in
        let smp = samplers.(t) in
        let combined = L0_sampler.fresh smp in
        Array.iter
          (fun (k, v) ->
            L0_sampler.add_scaled smp ~dst:combined ~coeff:v
              sampler_states.(t).(k))
          (Imat.row bt j);
        match L0_sampler.sample smp combined with
        | None -> None
        | Some (i, v) -> Some { row = i; col = j; value = v }
      end)

let run ctx prm ~a ~b = (run_many ctx prm ~count:1 ~a ~b).(0)

let run_many_safe ctx prm ~count ~a ~b =
  Outcome.capture ctx (fun () -> run_many ctx prm ~count ~a ~b)

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
