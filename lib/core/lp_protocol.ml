module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Imat = Matprod_matrix.Imat
module Lp = Matprod_sketch.Lp
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Trace = Matprod_obs.Trace

type params = {
  p : float;
  eps : float;
  sketch_groups : int;
  rho_const : float;
}

let default_params ?(p = 0.0) ~eps () =
  { p; eps; sketch_groups = 5; rho_const = 200.0 }

let validate prm ~a ~b =
  if not (prm.p >= 0.0 && prm.p <= 2.0) then
    invalid_arg "Lp_protocol: p must be in [0,2]";
  if not (prm.eps > 0.0 && prm.eps <= 1.0) then
    invalid_arg "Lp_protocol: eps must be in (0,1]";
  if Imat.cols a <> Imat.rows b then invalid_arg "Lp_protocol: dims"

(* Round 1: Bob ships sketches of his rows; Alice combines them into
   estimates of every row norm of C = A·B. [beta] is the sketch accuracy. *)
let round1 ctx prm ~beta ~a ~b =
  Trace.with_span ~name:"lp_protocol.round1_sketch_exchange"
    ~attrs:
      [
        ("p", Matprod_obs.Json.Float prm.p);
        ("beta", Matprod_obs.Json.Float beta);
      ]
  @@ fun () ->
  let out_cols = Imat.cols b in
  let lp =
    Lp.create ctx.Ctx.public ~p:prm.p ~eps:beta ~groups:prm.sketch_groups
      ~dim:(max 1 out_cols)
  in
  let plan = Lp.plan lp ~dim:(max 1 out_cols) in
  let bob_sketches =
    Pool.init (Imat.rows b) (fun k -> Lp.sketch_with_plan lp plan (Imat.row b k))
  in
  let sketches =
    Ctx.b2a ctx ~label:"lp-sketches(B rows)" (Codec.array (Lp.wire lp))
      bob_sketches
  in
  Pool.init (Imat.rows a) (fun i ->
      Lp.estimate_pow lp (Common.combine_sketches lp sketches (Imat.row a i)))

let estimate_row_norms ctx prm ~a ~b =
  validate prm ~a ~b;
  round1 ctx prm ~beta:prm.eps ~a ~b

(* Round 2: Alice partitions rows into (1+beta)-geometric groups by
   estimated norm, samples each group at rate rho/|G| * mass(G)/mass(C),
   and ships the sampled rows; Bob computes those rows of C exactly and
   returns the Horvitz–Thompson sum. *)
let round2 ctx ~p ~beta ~rho_const ~est ~a ~b =
  Trace.with_span ~name:"lp_protocol.round2_sampled_rows"
    ~attrs:[ ("p", Matprod_obs.Json.Float p) ]
  @@ fun () ->
  let nrows = Imat.rows a in
  if Array.length est <> nrows then invalid_arg "Lp_protocol.round2: est size";
  let level = Array.map (fun e -> Common.group_of ~beta e) est in
  let nlevels = Array.fold_left (fun acc i -> max acc (i + 1)) 1 level in
  let count = Array.make nlevels 0 and mass = Array.make nlevels 0.0 in
  for i = 0 to nrows - 1 do
    if est.(i) > 0.0 then begin
      let l = level.(i) in
      count.(l) <- count.(l) + 1;
      mass.(l) <- mass.(l) +. est.(i)
    end
  done;
  let total = Array.fold_left ( +. ) 0.0 mass in
  let rho = rho_const /. (beta *. beta) in
  let pl =
    Array.init nlevels (fun l ->
        if count.(l) = 0 || total <= 0.0 then 0.0
        else Float.min 1.0 (rho /. float_of_int count.(l) *. (mass.(l) /. total)))
  in
  let sampled = ref [] in
  for i = nrows - 1 downto 0 do
    if est.(i) > 0.0 && Prng.float ctx.Ctx.alice < pl.(level.(i)) then
      sampled := (i, level.(i), Imat.row a i) :: !sampled
  done;
  let row_codec = Codec.triple Codec.uint Codec.uint Codec.sparse_int_vec in
  let pl', rows =
    Ctx.a2b ctx ~label:"sampled rows of A"
      (Codec.pair Codec.float_array (Codec.list row_codec))
      (pl, !sampled)
  in
  List.fold_left
    (fun acc (_, l, a_row) ->
      let c_row = Common.row_times_matrix a_row b in
      let w = Common.lp_pow_dense ~p c_row in
      if pl'.(l) > 0.0 then acc +. (w /. pl'.(l)) else acc)
    0.0 rows

let run ctx prm ~a ~b =
  validate prm ~a ~b;
  let beta = sqrt prm.eps in
  let est = round1 ctx prm ~beta ~a ~b in
  round2 ctx ~p:prm.p ~beta ~rho_const:prm.rho_const ~est ~a ~b

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
