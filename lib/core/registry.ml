let table : (string, Estimator.packed) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

let register packed =
  let name = Estimator.name packed in
  if Hashtbl.mem table name then
    invalid_arg (Printf.sprintf "Registry.register: duplicate name %S" name);
  Hashtbl.replace table name packed;
  order := name :: !order

let () = List.iter register Estimator_impls.all
let find name = Hashtbl.find_opt table name
let names () = List.rev !order
let all () = List.map (fun name -> Hashtbl.find table name) (names ())
