module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Ctx = Matprod_comm.Ctx
module Transcript = Matprod_comm.Transcript

type result = {
  estimate : float;
  runs : float array;
  total_bits : int;
  rounds : int;
}

let run_median ~seed ~repetitions f =
  if repetitions <= 0 then invalid_arg "Boosting.run_median: repetitions";
  let root = Prng.create seed in
  let outputs = Array.make repetitions 0.0 in
  let bits = ref 0 and rounds = ref 0 in
  for r = 0 to repetitions - 1 do
    let run = Ctx.run ~seed:(Prng.fresh_seed root) f in
    outputs.(r) <- run.Ctx.output;
    bits := !bits + run.Ctx.bits;
    rounds := run.Ctx.rounds
  done;
  {
    estimate = Stats.median outputs;
    runs = outputs;
    total_bits = !bits;
    rounds = !rounds;
  }

type verdict = Full_quorum | Degraded of { survived : int; total : int }

type safe_result = {
  estimate : float;
  runs : float array;
  failures : (int * Outcome.error) list;
  total_bits : int;
  rounds : int;
  verdict : verdict;
}

let run_median_safe ~seed ~repetitions ?(min_survivors = 1) f =
  if repetitions < 1 then
    Error (Outcome.Precondition "Boosting.run_median_safe: repetitions >= 1")
  else if min_survivors < 1 || min_survivors > repetitions then
    Error
      (Outcome.Precondition
         "Boosting.run_median_safe: need 1 <= min_survivors <= repetitions")
  else begin
    let root = Prng.create seed in
    let survivors = ref [] and failures = ref [] in
    let bits = ref 0 and rounds = ref 0 in
    for r = 0 to repetitions - 1 do
      (* Same seed schedule as [run_median], so a fault-free safe run
         reproduces it exactly. The context is built by hand because a
         failed repetition's communication must still be charged. *)
      let ctx = Ctx.create ~seed:(Prng.fresh_seed root) () in
      (match Outcome.guard (fun () -> f ctx) with
      | Ok output ->
          survivors := output :: !survivors;
          rounds := max !rounds (Transcript.rounds (Ctx.transcript ctx))
      | Error e -> failures := (r, e) :: !failures);
      bits := !bits + Transcript.total_bits (Ctx.transcript ctx)
    done;
    let failures = List.rev !failures in
    let runs = Array.of_list (List.rev !survivors) in
    let survived = Array.length runs in
    if survived < min_survivors then
      Error
        (Outcome.Protocol_failure
           (Printf.sprintf
              "Boosting: quorum lost — %d of %d repetitions survived \
               (needed %d); first failure: %s"
              survived repetitions min_survivors
              (match failures with
              | (_, e) :: _ -> Outcome.error_to_string e
              | [] -> "none")))
    else
      Ok
        {
          estimate = Stats.median runs;
          runs;
          failures;
          total_bits = !bits;
          rounds = !rounds;
          verdict =
            (if survived = repetitions then Full_quorum
             else Degraded { survived; total = repetitions });
        }
  end

let repetitions_for ~delta =
  if not (delta > 0.0 && delta < 1.0) then invalid_arg "Boosting: delta";
  let r = int_of_float (Float.ceil (12.0 *. log (1.0 /. delta))) in
  let r = max 1 r in
  if r land 1 = 1 then r else r + 1
