(** The standard median trick (end of §3): run a constant-success-probability
    estimation protocol O(log 1/δ) times with independent coins and take the
    median, boosting the success probability to 1 − δ at an O(log 1/δ)
    communication factor — the factor the paper's Õ(·) absorbs. *)

type result = {
  estimate : float;  (** median of the per-run outputs *)
  runs : float array;  (** the individual outputs *)
  total_bits : int;  (** communication summed over all runs *)
  rounds : int;  (** rounds of a single run (runs are independent) *)
}

val run_median :
  seed:int -> repetitions:int -> (Matprod_comm.Ctx.t -> float) -> result
(** [run_median ~seed ~repetitions f] executes [f] in [repetitions] fresh
    contexts with seeds derived from [seed]. Raises whatever [f] raises;
    on a hostile wire use {!run_median_safe}. *)

(** {1 Fail-safe boosting} *)

type verdict =
  | Full_quorum  (** every repetition survived *)
  | Degraded of { survived : int; total : int }
      (** some repetitions died on the wire; the median is over survivors *)

type safe_result = {
  estimate : float;  (** median of the {e surviving} outputs *)
  runs : float array;  (** surviving outputs, in repetition order *)
  failures : (int * Outcome.error) list;
      (** (repetition index, typed error) of the casualties *)
  total_bits : int;
      (** communication of all repetitions, failed ones included — bits
          sent before a link died were still sent *)
  rounds : int;  (** max rounds over the surviving repetitions *)
  verdict : verdict;
}

val run_median_safe :
  seed:int ->
  repetitions:int ->
  ?min_survivors:int ->
  (Matprod_comm.Ctx.t -> float) ->
  (safe_result, Outcome.error) Stdlib.result
(** Like {!run_median}, but each repetition runs under {!Outcome.guard}: a
    repetition that dies of a wire/decode/precondition failure is recorded
    as a casualty instead of aborting the whole estimate, and the median
    is taken over the survivors with a quorum {!verdict}. Returns [Error]
    when [repetitions < 1], when [min_survivors] (default 1) is not met —
    all-runs-failed always lands here — or when [min_survivors] itself is
    out of range. With an even number of survivors the median averages the
    two middle outputs (exactly {!Matprod_util.Stats.median}). The seed
    schedule matches [run_median], so with no faults the estimate is
    identical. *)

val repetitions_for : delta:float -> int
(** ⌈12·ln(1/δ)⌉, forced odd and at least 1 — enough repetitions to push a
    0.9-success protocol to 1 − δ by Chernoff. Raises [Invalid_argument]
    unless 0 < δ < 1 (NaN included). *)
