(** Fail-safe protocol results: the typed errors and run diagnostics shared
    by every driver's [run_safe] entry point.

    The contract (docs/ROBUSTNESS.md): a protocol run over a hostile wire
    ends in exactly one of

    - {b success} — [Ok (output, diagnostics)], where [output] is within
      the protocol's guarantee (the reliability layer delivers intact
      bytes or nothing, so a completed run equals its fault-free twin);
    - {b typed failure} — [Error e] naming what went wrong;

    and never in an escaped exception or a silently wrong answer. *)

type error =
  | Link_failure of { label : string; attempts : int }
      (** a message exhausted its retransmission budget *)
  | Decode_failure of string  (** {!Matprod_comm.Codec.Decode_error} *)
  | Precondition of string  (** [Invalid_argument] from input validation *)
  | Protocol_failure of string  (** a sketch-level or internal [Failure] *)
  | Crashed of {
      party : Matprod_comm.Transcript.party;
      after_messages : int;
    }
      (** a {!Matprod_comm.Fault} crash rule killed a party mid-protocol;
          the journaled prefix (if any) remains valid for resume *)
  | Budget_exhausted of { resource : string; spent : int; limit : int }
      (** the {!Supervisor} cumulative budget ([resource] is ["bits"] or
          ["rounds"]) ran out before any ladder rung succeeded *)
  | Byzantine_detected of { rank : int; replica : int; check : string }
      (** a fleet link's decoded shard answer was quarantined: it failed
          answer verification or lost the replica vote ([check] names the
          violated invariant — see [Matprod_verify.Verify] and
          docs/ROBUSTNESS.md). The wire was intact; the {e worker} lied. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Degraded success}

    A fleet (coordinator + k workers, [Matprod_topology.Fleet])
    widens the trichotomy by one honest outcome: when only a quorum
    [q <= k] of shard links survives, the coordinator still answers —
    the surviving merge is a valid estimate of the statistic restricted
    to the surviving rows — but the result is {e flagged} with how much
    of the input it covers. [Degraded] is only legal when some link was
    actually lost ([survivors < parties]); a full fleet must answer
    [Full]. *)

type degradation = {
  survivors : int;  (** links that delivered a shard answer *)
  parties : int;  (** fleet size k *)
  coverage : float;  (** fraction of input rows the answer covers, in (0,1] *)
  bound_factor : float;
      (** multiplier on the estimator's error guarantee when the degraded
          answer is extrapolated to the full input under a uniform-mass
          assumption: [1 / coverage]. On the surviving rows themselves the
          original guarantee holds unwidened. *)
}

type 'a graded = Full of 'a | Degraded of 'a * degradation

val degradation :
  survivors:int -> parties:int -> coverage:float -> degradation
(** Smart constructor: validates ranges and derives [bound_factor].
    Raises [Invalid_argument] on [coverage] outside (0, 1] or
    [survivors] outside [0, parties]. *)

val graded_value : 'a graded -> 'a
val is_degraded : 'a graded -> bool
val degradation_to_string : degradation -> string

val pp_graded :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a graded -> unit

(** What a run cost and what the wire did to it. *)
type diagnostics = {
  bits : int;  (** transcript bits, retransmissions and acks included *)
  rounds : int;  (** speaking phases, ack alternations included *)
  retries : int;  (** retransmissions performed *)
  crc_rejects : int;  (** frames discarded as corrupt *)
  faults_injected : int;  (** total fault events the model injected *)
  waited : float;  (** simulated seconds in timeouts plus injected delay *)
}

val diagnostics_of_ctx : Matprod_comm.Ctx.t -> diagnostics

val guard : (unit -> 'a) -> ('a, error) result
(** Run a thunk, converting the wire/precondition exception families
    ({!Matprod_comm.Reliable.Link_failure}, {!Matprod_comm.Codec.Decode_error},
    {!Matprod_comm.Fault.Party_crash},
    {!Matprod_comm.Journal.Replay_mismatch}, [Invalid_argument], [Failure])
    into typed errors. Anything else — an actual bug — still propagates. *)

val capture :
  Matprod_comm.Ctx.t -> (unit -> 'a) -> ('a * diagnostics, error) result
(** {!guard} plus {!diagnostics_of_ctx} on success — the shape every
    driver's [run_safe] returns. *)
