(** Fail-safe protocol results: the typed errors and run diagnostics shared
    by every driver's [run_safe] entry point.

    The contract (docs/ROBUSTNESS.md): a protocol run over a hostile wire
    ends in exactly one of

    - {b success} — [Ok (output, diagnostics)], where [output] is within
      the protocol's guarantee (the reliability layer delivers intact
      bytes or nothing, so a completed run equals its fault-free twin);
    - {b typed failure} — [Error e] naming what went wrong;

    and never in an escaped exception or a silently wrong answer. *)

type error =
  | Link_failure of { label : string; attempts : int }
      (** a message exhausted its retransmission budget *)
  | Decode_failure of string  (** {!Matprod_comm.Codec.Decode_error} *)
  | Precondition of string  (** [Invalid_argument] from input validation *)
  | Protocol_failure of string  (** a sketch-level or internal [Failure] *)
  | Crashed of {
      party : Matprod_comm.Transcript.party;
      after_messages : int;
    }
      (** a {!Matprod_comm.Fault} crash rule killed a party mid-protocol;
          the journaled prefix (if any) remains valid for resume *)
  | Budget_exhausted of { resource : string; spent : int; limit : int }
      (** the {!Supervisor} cumulative budget ([resource] is ["bits"] or
          ["rounds"]) ran out before any ladder rung succeeded *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** What a run cost and what the wire did to it. *)
type diagnostics = {
  bits : int;  (** transcript bits, retransmissions and acks included *)
  rounds : int;  (** speaking phases, ack alternations included *)
  retries : int;  (** retransmissions performed *)
  crc_rejects : int;  (** frames discarded as corrupt *)
  faults_injected : int;  (** total fault events the model injected *)
  waited : float;  (** simulated seconds in timeouts plus injected delay *)
}

val diagnostics_of_ctx : Matprod_comm.Ctx.t -> diagnostics

val guard : (unit -> 'a) -> ('a, error) result
(** Run a thunk, converting the wire/precondition exception families
    ({!Matprod_comm.Reliable.Link_failure}, {!Matprod_comm.Codec.Decode_error},
    {!Matprod_comm.Fault.Party_crash},
    {!Matprod_comm.Journal.Replay_mismatch}, [Invalid_argument], [Failure])
    into typed errors. Anything else — an actual bug — still propagates. *)

val capture :
  Matprod_comm.Ctx.t -> (unit -> 'a) -> ('a * diagnostics, error) result
(** {!guard} plus {!diagnostics_of_ctx} on success — the shape every
    driver's [run_safe] returns. *)
