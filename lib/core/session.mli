(** Amortised query sessions over one sketch exchange.

    A query optimizer rarely asks one question: it wants the join size,
    then the per-row cardinalities, then the skew. The round-1 message of
    Algorithm 1 (Bob's ℓp sketches of his rows) already determines
    (1+β)-estimates of {e every} row norm of C = A·B on Alice's side, so it
    can be paid for once and queried repeatedly for free:

    - [establish] performs the one-time exchange at accuracy β;
    - [norm_pow], [row_norm_pow], [top_rows] answer from the cached
      sketches with {e zero} additional communication;
    - [refine] runs Algorithm 1's sampling round on top of the cached
      round, upgrading the norm estimate from (1+β) to (1+O(β²)) — the
      full Theorem 3.1 guarantee with ε = β². *)

type t

val establish :
  ?p:float ->
  ?groups:int ->
  Matprod_comm.Ctx.t ->
  beta:float ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  t
(** One round, Õ(n/β²) bits. [p] defaults to 0. *)

val p : t -> float
val beta : t -> float

val norm_pow : t -> float
(** (1+β)-estimate of ‖C‖_p^p. No communication. *)

val row_norm_pow : t -> int -> float
(** (1+β)-estimate of ‖C_{i,*}‖_p^p. No communication. *)

val top_rows : t -> k:int -> (int * float) list
(** The [k] rows with the largest estimated norms, descending. No
    communication. *)

val refine : Matprod_comm.Ctx.t -> ?rho_const:float -> t -> float
(** Algorithm 1's round 2 over this session's cached estimates: samples
    rows with the group-calibrated probabilities and returns the
    Horvitz–Thompson estimate of ‖C‖_p^p — a (1+O(β²))-approximation for
    Õ(n·rho_const/β²) extra bits. Must be called with the same context
    the session was established in (the transcript continues). *)

val establish_safe :
  ?p:float ->
  ?groups:int ->
  Matprod_comm.Ctx.t ->
  beta:float ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (t * Outcome.diagnostics, Outcome.error) result
(** {!establish} under the {!Outcome} trichotomy: over a faulty or crashy
    wire the session either comes up (fault-free-equivalent) or the caller
    gets a typed error — never an escaped exception. *)

val refine_safe :
  Matprod_comm.Ctx.t ->
  ?rho_const:float ->
  t ->
  (float * Outcome.diagnostics, Outcome.error) result
(** {!refine} under the {!Outcome} trichotomy. Diagnostics cover the whole
    context transcript (establish + refine), not just the refine round. *)
