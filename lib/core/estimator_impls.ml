module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product

let ln = Common.log_factor
let fn n = float_of_int n

(* Lift an integer-matrix driver to the estimator's binary workload. *)
let on_imat run ctx query ~a ~b =
  run ctx query ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)

let lp ~name ~p ~describe =
  Estimator.make ~name ~describe
    ~default:(Lp_protocol.default_params ~p ~eps:0.5 ())
    ~cost:(fun (prm : Lp_protocol.params) ~n ->
      { Estimator.bits = 64.0 *. fn n *. ln n /. prm.Lp_protocol.eps; rounds = 3 })
    ~comparable:(fun x -> Estimator.Number x)
    (on_imat Lp_protocol.run)

let lp_p0 =
  lp ~name:"lp p=0" ~p:0.0
    ~describe:"Algorithm 1: (1+eps)||AB||_0, 2 rounds, O~(n/eps) bits"

let lp_p1 =
  lp ~name:"lp p=1" ~p:1.0
    ~describe:"Algorithm 1 at p = 1: (1+eps)||AB||_1"

let lp_oneround =
  Estimator.make ~name:"lp oneround p=2"
    ~describe:"one-round lp sketch baseline [16] at p = 2, O~(n/eps^2) bits"
    ~default:(Lp_oneround.default_params ~p:2.0 ~eps:0.5 ())
    ~cost:(fun (prm : Lp_oneround.params) ~n ->
      let e = prm.Lp_oneround.eps in
      { Estimator.bits = 64.0 *. fn n *. ln n /. (e *. e); rounds = 1 })
    ~comparable:(fun x -> Estimator.Number x)
    (on_imat Lp_oneround.run)

let srht =
  Estimator.make ~name:"srht"
    ~describe:"SRHT/FWHT one-round (1+eps)||AB||_F^2, O(d log d) per row"
    ~default:(Frobenius.default_params ~eps:0.5 ())
    ~cost:(fun (prm : Frobenius.params) ~n ->
      let e = prm.Frobenius.eps in
      { Estimator.bits = 64.0 *. fn n *. ln n /. (e *. e); rounds = 1 })
    ~comparable:(fun x -> Estimator.Number x)
    (on_imat Frobenius.run)

let cohen_baseline =
  Estimator.make ~name:"cohen_baseline"
    ~describe:"Cohen's exponential-minima estimator [12] of ||AB||_0"
    ~default:(Cohen_baseline.params_for_eps ~eps:0.5)
    ~cost:(fun (prm : Cohen_baseline.params) ~n ->
      { Estimator.bits = 32.0 *. fn n *. float_of_int prm.Cohen_baseline.reps;
        rounds = 1 })
    ~comparable:(fun x -> Estimator.Number x)
    (fun ctx prm ~a ~b -> Cohen_baseline.run ctx prm ~a ~b)

let l1_exact =
  Estimator.make ~name:"l1_exact"
    ~describe:"Remark 2: exact ||AB||_1 from column/row sums, 1 round"
    ~default:()
    ~cost:(fun () ~n -> { Estimator.bits = 32.0 *. fn n; rounds = 1 })
    ~comparable:(fun x -> Estimator.Number (float_of_int x))
    (on_imat (fun ctx () ~a ~b -> L1_exact.run ctx ~a ~b))

let l0_sampling =
  Estimator.make ~name:"l0_sampling"
    ~describe:"Theorem 3.2: near-uniform nonzero entry of AB, 1 round"
    ~default:(L0_sampling.default_params ~eps:0.5)
    ~cost:(fun (prm : L0_sampling.params) ~n ->
      let e = prm.L0_sampling.eps in
      { Estimator.bits = 64.0 *. fn n *. ln n /. (e *. e); rounds = 1 })
    ~comparable:(fun s ->
      Estimator.Sample
        (Option.map (fun s -> L0_sampling.(s.row, s.col, s.value)) s))
    (on_imat L0_sampling.run)

let l1_sampling =
  Estimator.make ~name:"l1_sampling"
    ~describe:"Remark 3: one entry of AB drawn proportional to its value"
    ~default:()
    ~cost:(fun () ~n -> { Estimator.bits = 64.0 *. fn n; rounds = 1 })
    ~comparable:(fun s ->
      Estimator.Sample
        (Option.map (fun s -> L1_sampling.(s.row, s.col, s.witness)) s))
    (on_imat (fun ctx () ~a ~b -> L1_sampling.run ctx ~a ~b))

let linf_binary =
  Estimator.make ~name:"linf_binary"
    ~describe:"Algorithm 2: (2+eps)||AB||_inf for binary matrices"
    ~default:(Linf_binary.default_params ~eps:0.5)
    ~cost:(fun (prm : Linf_binary.params) ~n ->
      { Estimator.bits = 64.0 *. (fn n ** 1.5) *. ln n /. prm.Linf_binary.eps;
        rounds = 3 })
    ~comparable:(fun (r : Linf_binary.result) ->
      Estimator.Leveled (r.Linf_binary.estimate, r.Linf_binary.level))
    (fun ctx prm ~a ~b -> Linf_binary.run ctx prm ~a ~b)

let linf_kappa =
  Estimator.make ~name:"linf_kappa"
    ~describe:"Algorithm 3: kappa-approx ||AB||_inf, O~(n^1.5/kappa) bits"
    ~default:(Linf_kappa.default_params ~kappa:4.0)
    ~cost:(fun (prm : Linf_kappa.params) ~n ->
      { Estimator.bits = 64.0 *. (fn n ** 1.5) *. ln n /. prm.Linf_kappa.kappa;
        rounds = 5 })
    ~comparable:(fun (r : Linf_kappa.result) ->
      Estimator.Leveled (r.Linf_kappa.estimate, r.Linf_kappa.level))
    (fun ctx prm ~a ~b -> Linf_kappa.run ctx prm ~a ~b)

let linf_general =
  Estimator.make ~name:"linf_general"
    ~describe:"Theorem 4.8: kappa-approx ||AB||_inf for integer matrices"
    ~default:{ Linf_general.kappa = 2.0 }
    ~cost:(fun (prm : Linf_general.params) ~n ->
      let k = prm.Linf_general.kappa in
      { Estimator.bits = 32.0 *. fn n *. fn n /. (k *. k); rounds = 1 })
    ~comparable:(fun x -> Estimator.Number x)
    (on_imat Linf_general.run)

let hh_binary =
  Estimator.make ~name:"hh_binary"
    ~describe:"Theorem 5.3: (phi, eps)-heavy hitters, binary matrices"
    ~default:(Hh_binary.default_params ~phi:0.2 ~eps:0.1 ())
    ~cost:(fun (prm : Hh_binary.params) ~n ->
      let e = prm.Hh_binary.eps and phi = prm.Hh_binary.phi in
      { Estimator.bits = 64.0 *. (fn n +. (phi /. (e *. e))) *. ln n; rounds = 5 })
    ~comparable:(fun cs -> Estimator.Coords cs)
    (fun ctx prm ~a ~b -> Hh_binary.run ctx prm ~a ~b)

let hh_countsketch =
  Estimator.make ~name:"hh_countsketch"
    ~describe:"compressed-matmul baseline [32]: CountSketch point queries"
    ~default:(Hh_countsketch.default_params ~phi:0.2 ~eps:0.1 ~buckets:16)
    ~cost:(fun (prm : Hh_countsketch.params) ~n ->
      { Estimator.bits =
          32.0 *. fn n
          *. float_of_int (prm.Hh_countsketch.buckets * prm.Hh_countsketch.reps);
        rounds = 1 })
    ~comparable:(fun cs -> Estimator.Coords cs)
    (on_imat Hh_countsketch.run)

let hh_general =
  Estimator.make ~name:"hh_general"
    ~describe:"Algorithm 4: (phi, eps)-heavy hitters, integer matrices"
    ~default:(Hh_general.default_params ~phi:0.2 ~eps:0.1 ())
    ~cost:(fun (prm : Hh_general.params) ~n ->
      let e = prm.Hh_general.eps and phi = prm.Hh_general.phi in
      { Estimator.bits = 64.0 *. sqrt phi /. e *. fn n *. ln n; rounds = 5 })
    ~comparable:(fun cs -> Estimator.Coords cs)
    (on_imat Hh_general.run)

let matprod =
  Estimator.make ~name:"matprod"
    ~describe:"Lemma 2.5 role: additively shared exact product C_A + C_B = AB"
    ~default:()
    ~cost:(fun () ~n -> { Estimator.bits = 64.0 *. fn n *. sqrt (fn n); rounds = 3 })
    ~comparable:(fun (s : Matprod_protocol.shares) ->
      Estimator.Shares
        ( Common.Entry_map.entries s.Matprod_protocol.alice,
          Common.Entry_map.entries s.Matprod_protocol.bob ))
    (on_imat (fun ctx () ~a ~b -> Matprod_protocol.run ctx ~a ~b))

let session =
  Estimator.make ~name:"session"
    ~describe:"amortised query session: establish at beta, then refine"
    ~default:0.5
    ~cost:(fun beta ~n ->
      { Estimator.bits = 64.0 *. fn n *. ln n /. (beta *. beta); rounds = 3 })
    ~comparable:(fun x -> Estimator.Number x)
    (on_imat (fun ctx beta ~a ~b ->
         let s = Session.establish ctx ~beta ~a ~b in
         Session.norm_pow s +. Session.refine ctx s))

let trivial =
  Estimator.make ~name:"trivial"
    ~describe:"ship-A baseline: n*m bits, Bob answers exactly (||C||_0 here)"
    ~default:0.0
    ~cost:(fun _p ~n -> { Estimator.bits = fn n *. fn n; rounds = 1 })
    ~comparable:(fun x -> Estimator.Number x)
    (fun ctx p ~a ~b -> Trivial.run_bool ctx ~a ~b (fun c -> Product.lp_pow c ~p))

let joins_equality =
  Estimator.make ~name:"joins equality"
    ~describe:"set-equality join of [16] via O(log n)-bit fingerprints"
    ~default:()
    ~cost:(fun () ~n -> { Estimator.bits = 64.0 *. fn n; rounds = 1 })
    ~comparable:(fun x -> Estimator.Number (float_of_int x))
    (fun ctx () ~a ~b -> Joins.equality_join ctx ~a ~b)

let joins_disjointness =
  Estimator.make ~name:"joins disjointness"
    ~describe:"set-disjointness join: n*m - ||AB||_0 via Algorithm 1"
    ~default:0.25
    ~cost:(fun eps ~n -> { Estimator.bits = 64.0 *. fn n *. ln n /. eps; rounds = 3 })
    ~comparable:(fun x -> Estimator.Number x)
    (fun ctx eps ~a ~b -> Joins.disjointness_join ctx ~eps ~a ~b)

let joins_atleast =
  Estimator.make ~name:"joins atleast"
    ~describe:"at-least-T join: threshold fraction of l0 samples"
    ~default:(Joins.default_threshold_params ~eps:0.25, 2)
    ~cost:(fun ((prm : Joins.threshold_params), _t) ~n ->
      { Estimator.bits =
          64.0 *. fn n *. ln n
          *. float_of_int (max 1 prm.Joins.samples)
          /. fn (max 1 n);
        rounds = 3 })
    ~comparable:(fun x -> Estimator.Number x)
    (fun ctx (prm, t) ~a ~b -> Joins.at_least_t_join ctx prm ~t ~a ~b)

let all =
  [
    lp_p0;
    lp_p1;
    lp_oneround;
    srht;
    cohen_baseline;
    l1_exact;
    l0_sampling;
    l1_sampling;
    linf_binary;
    linf_kappa;
    linf_general;
    hh_binary;
    hh_countsketch;
    hh_general;
    matprod;
    session;
    trivial;
    joins_equality;
    joins_disjointness;
    joins_atleast;
  ]
