module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Entry_map = Common.Entry_map
module Trace = Matprod_obs.Trace

type params = {
  p : float;
  phi : float;
  eps : float;
  alpha_const : float;
  verify_samples_const : float;
  lp_eps : float;
}

let default_params ?(p = 1.0) ~phi ~eps () =
  { p; phi; eps; alpha_const = 16.0; verify_samples_const = 4.0; lp_eps = 0.25 }

let coord_codec = Codec.pair Codec.uint Codec.uint

let run ctx prm ~a ~b =
  if not (prm.p > 0.0 && prm.p <= 2.0) then invalid_arg "Hh_binary: p range";
  if not (0.0 < prm.eps && prm.eps <= prm.phi && prm.phi <= 1.0) then
    invalid_arg "Hh_binary: need 0 < eps <= phi <= 1";
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Hh_binary: dims";
  let inner = Bmat.cols a in
  let n = max (Bmat.rows a) (Bmat.cols b) in
  let inv_p = 1.0 /. prm.p in
  (* Step 1: ||C||_p^p to accuracy sufficient for the (phi, eps) band.
     For p = 1 the Remark 2 identity gives it exactly in O(n log n) bits;
     otherwise run Algorithm 1. *)
  let lpp =
    Trace.with_span ~name:"hh_binary.norm_estimation"
      ~attrs:[ ("p", Matprod_obs.Json.Float prm.p) ]
    @@ fun () ->
    if prm.p = 1.0 then float_of_int (L1_exact.run_bool ctx ~a ~b)
    else
      let eps1 = Float.min prm.lp_eps (prm.eps /. (4.0 *. prm.phi)) in
      Lp_protocol.run ctx
        (Lp_protocol.default_params ~p:prm.p ~eps:eps1 ())
        ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)
  in
  if lpp <= 0.0 then []
  else begin
    let lp_norm = lpp ** inv_p in
    let heavy_value = (prm.phi *. lpp) ** inv_p in
    let out_value = ((prm.phi -. (prm.eps /. 2.0)) *. lpp) ** inv_p in
    (* Step 2: universe (column) sampling with shared coins. *)
    let alpha = (prm.alpha_const *. Common.log_factor n) ** inv_p in
    let beta =
      Float.min 1.0 (alpha /. ((prm.phi ** inv_p) *. lp_norm))
    in
    let shares =
      Trace.with_span ~name:"hh_binary.sampling_round"
        ~attrs:[ ("beta", Matprod_obs.Json.Float beta) ]
      @@ fun () ->
      let survives =
        Array.init inner (fun _ -> Prng.bernoulli ctx.Ctx.public beta)
      in
      let a' = Bmat.filter_entries a (fun _ k -> survives.(k)) in
      let b' = Bmat.filter_entries b (fun k _ -> survives.(k)) in
      Matprod_protocol.run ctx ~a:(Imat.of_bmat a') ~b:(Imat.of_bmat b')
    in
    Trace.with_span ~name:"hh_binary.candidate_verification" @@ fun () ->
    (* Step 3: share entries that look heavy become candidates. Besides the
       paper's β·(ϕ(L'_p)^p/20)^{1/p} cut, any entry that can clear the
       final threshold must leave one share ≥ ~β·out_value/2 (shares split
       an entry two ways and the sampled value concentrates), so the
       candidate bar can be raised to 0.3·β·out_value — sound, and it stops
       a long tail of hopeless candidates from being verified when
       ϕ·‖C‖_p^p is small. *)
    let theta =
      Float.max
        (beta *. heavy_value /. (20.0 ** inv_p))
        (0.3 *. beta *. out_value)
    in
    let candidates_of share =
      List.filter_map
        (fun (i, j, v) -> if float_of_int v >= theta then Some (i, j) else None)
        (Entry_map.entries share)
    in
    let sb =
      Ctx.b2a ctx ~label:"candidates from C_B" (Codec.list coord_codec)
        (candidates_of shares.Matprod_protocol.bob)
    in
    let candidates =
      List.sort_uniq compare (candidates_of shares.Matprod_protocol.alice @ sb)
    in
    (* Verification: Alice ships |A_i| and sampled positions of A_i per
       candidate; Bob probes his column and thresholds. *)
    let m =
      max 16
        (int_of_float
           (Float.ceil
              (prm.verify_samples_const
              *. ((prm.phi /. prm.eps) ** 2.0)
              *. Common.log_factor n)))
    in
    let probes =
      List.map
        (fun (i, j) ->
          let row = Bmat.row a i in
          let deg = Array.length row in
          let samples =
            if deg = 0 then [||]
            else Array.init m (fun _ -> row.(Prng.int ctx.Ctx.alice deg))
          in
          (i, j, deg, samples))
        candidates
    in
    let probes' =
      Ctx.a2b ctx ~label:"candidate probes"
        (Codec.list
           (Codec.triple coord_codec Codec.uint (Codec.array Codec.uint)))
        (List.map (fun (i, j, deg, s) -> ((i, j), deg, s)) probes)
    in
    let out =
      List.filter_map
        (fun ((i, j), deg, samples) ->
          if deg = 0 then None
          else begin
            let hits = ref 0 in
            Array.iter (fun k -> if Bmat.get b k j then incr hits) samples;
            let est =
              float_of_int deg *. float_of_int !hits
              /. float_of_int (Array.length samples)
            in
            if est >= out_value then Some (i, j) else None
          end)
        probes'
    in
    List.sort compare out
  end

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
