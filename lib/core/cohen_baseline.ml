module Bmat = Matprod_matrix.Bmat
module Pool = Matprod_util.Pool
module Cohen = Matprod_sketch.Cohen
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type params = { reps : int }

let params_for_eps ~eps =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Cohen_baseline: eps";
  { reps = max 4 (int_of_float (Float.ceil (4.0 /. (eps *. eps)))) }

let run ctx prm ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Cohen_baseline: dims";
  let est = Cohen.create ctx.Ctx.alice ~reps:prm.reps ~rows:(max 1 (Bmat.rows a)) in
  let at = Bmat.transpose a in
  let plan = Cohen.plan est in
  let mins =
    Cohen.column_mins_with_plan est plan
      ~supp_of_col:(fun k -> Bmat.row at k)
      ~cols:(Bmat.cols a)
  in
  let mins' =
    Ctx.a2b ctx ~label:"exponential minima m_k"
      (Codec.array Codec.float32_array) mins
  in
  (* Bob: per output column j, combine minima over supp(B_{*,j}) and sum
     the support-size estimates (index-order fold → domain-count invariant). *)
  let bt = Bmat.transpose b in
  Pool.map_sum (Bmat.cols b) (fun j -> Cohen.estimate_union est mins' (Bmat.row bt j))
