module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Entry_map = Common.Entry_map

type params = { eps : float; gamma_const : float }

let default_params ~eps = { eps; gamma_const = 8.0 }

type result = { estimate : float; level : int; p_level : float }

let index_lists_codec = Codec.list (Codec.pair Codec.uint Codec.sorted_int_array)

let run_with ctx ~base ~threshold ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Linf_binary: dims";
  if not (base > 1.0) then invalid_arg "Linf_binary: base > 1";
  let inner = Bmat.cols a in
  let nnz_a = Bmat.nnz a in
  (* Number of levels: enough to drive ||A^L||_1 to ~0. *)
  let nlevels =
    2 + int_of_float (Float.ceil (log (float_of_int (max 2 (2 * nnz_a))) /. log base))
  in
  (* Alice: one geometric level per 1-entry => nested subsamples. *)
  let rate = 1.0 /. base in
  let entry_levels =
    Array.init (Bmat.rows a) (fun i ->
        Array.map
          (fun _k -> min (nlevels - 1) (Prng.geometric_level ctx.Ctx.alice rate))
          (Bmat.row a i))
  in
  (* Column sums of every level. *)
  let colsums = Array.init nlevels (fun _ -> Array.make inner 0) in
  Array.iteri
    (fun i lv ->
      Array.iteri
        (fun idx lmax ->
          let k = (Bmat.row a i).(idx) in
          for l = 0 to lmax do
            colsums.(l).(k) <- colsums.(l).(k) + 1
          done)
        lv)
    entry_levels;
  (* Round 1 (Alice -> Bob): all levels' column sums, sparsely encoded so
     the cost tracks the surviving support (essential after Algorithm 3's
     universe sampling). *)
  let to_sparse arr =
    let out = ref [] in
    for k = Array.length arr - 1 downto 0 do
      if arr.(k) <> 0 then out := (k, arr.(k)) :: !out
    done;
    Array.of_list !out
  in
  let of_sparse pairs =
    let arr = Array.make inner 0 in
    Array.iter (fun (k, v) -> arr.(k) <- v) pairs;
    arr
  in
  let colsums' =
    Array.map of_sparse
      (Ctx.a2b ctx ~label:"level column sums of A"
         (Codec.array Codec.sparse_int_vec)
         (Array.map to_sparse colsums))
  in
  (* Bob: ||C^l||_1 = sum_k colsum_l(k) * rowweight_B(k); pick l*. *)
  let rowweights = Array.init inner (fun k -> Bmat.row_weight b k) in
  let l1_of_level l =
    let acc = ref 0 in
    Array.iteri (fun k u -> acc := !acc + (u * rowweights.(k))) colsums'.(l);
    !acc
  in
  let rec find_level l =
    if l >= nlevels - 1 then nlevels - 1
    else if float_of_int (l1_of_level l) <= threshold then l
    else find_level (l + 1)
  in
  let lstar = find_level 0 in
  (* Round 2 (Bob -> Alice): l*, his per-index weights, and his index sets
     where his side is strictly smaller. *)
  let bob_lists =
    List.filter_map
      (fun k ->
        let uk = colsums'.(lstar).(k) and vk = rowweights.(k) in
        if vk < uk && vk > 0 then Some (k, Bmat.row b k) else None)
      (List.init inner (fun k -> k))
  in
  let lstar', rowweights', bob_lists' =
    Ctx.b2a ctx ~label:"l*, B weights, B index sets"
      (Codec.triple Codec.uint Codec.uint_array index_lists_codec)
      (lstar, rowweights, bob_lists)
  in
  (* Alice knows her own level column sums, indexed by the received l*. *)
  let u_star k = colsums.(lstar').(k) in
  (* Alice: the surviving entries of column k at level l*. *)
  let level_col k =
    let out = ref [] in
    for i = Bmat.rows a - 1 downto 0 do
      let row = Bmat.row a i in
      let lv = entry_levels.(i) in
      (* binary search for k in row *)
      let rec find lo hi =
        if lo >= hi then ()
        else
          let mid = (lo + hi) / 2 in
          if row.(mid) = k then (if lv.(mid) >= lstar' then out := i :: !out)
          else if row.(mid) < k then find (mid + 1) hi
          else find lo mid
      in
      find 0 (Array.length row)
    done;
    Array.of_list !out
  in
  (* Alice's share: indices Bob shipped. *)
  let ca = Entry_map.create () in
  List.iter
    (fun (k, bob_set) ->
      let acol = level_col k in
      Array.iter
        (fun i -> Array.iter (fun j -> Entry_map.add ca i j 1) bob_set)
        acol)
    bob_lists';
  let ca_max = Entry_map.linf ca in
  (* Round 3 (Alice -> Bob): her index sets where her side is not larger,
     plus ||C_A||_inf. *)
  let alice_lists =
    List.filter_map
      (fun k ->
        let uk = u_star k and vk = rowweights'.(k) in
        if uk <= vk && uk > 0 && vk > 0 then Some (k, level_col k) else None)
      (List.init inner (fun k -> k))
  in
  let alice_lists', ca_max' =
    Ctx.a2b ctx ~label:"A index sets, |C_A|inf"
      (Codec.pair index_lists_codec Codec.uint)
      (alice_lists, ca_max)
  in
  (* Bob's share. *)
  let cb = Entry_map.create () in
  List.iter
    (fun (k, acol) ->
      let brow = Bmat.row b k in
      Array.iter
        (fun i -> Array.iter (fun j -> Entry_map.add cb i j 1) brow)
        acol)
    alice_lists';
  let p_level = rate ** float_of_int lstar' in
  {
    estimate = float_of_int (max ca_max' (Entry_map.linf cb)) /. p_level;
    level = lstar';
    p_level;
  }

let run ctx prm ~a ~b =
  if not (prm.eps > 0.0 && prm.eps <= 1.0) then
    invalid_arg "Linf_binary: eps range";
  let n = max (Bmat.rows a) (Bmat.cols b) in
  let gamma = prm.gamma_const *. Common.log_factor n /. (prm.eps *. prm.eps) in
  let threshold =
    gamma *. float_of_int (Bmat.rows a) *. float_of_int (Bmat.cols b)
  in
  run_with ctx ~base:(1.0 +. prm.eps) ~threshold ~a ~b

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
