module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Entry_map = Common.Entry_map
module Trace = Matprod_obs.Trace

type params = {
  p : float;
  phi : float;
  eps : float;
  beta_const : float;
  lp_eps : float;
}

let default_params ?(p = 1.0) ~phi ~eps () =
  { p; phi; eps; beta_const = 32.0; lp_eps = 0.25 }

let validate prm ~a ~b =
  if not (prm.p > 0.0 && prm.p <= 2.0) then invalid_arg "Hh_general: p range";
  if not (0.0 < prm.eps && prm.eps <= prm.phi && prm.phi <= 1.0) then
    invalid_arg "Hh_general: need 0 < eps <= phi <= 1";
  if Imat.cols a <> Imat.rows b then invalid_arg "Hh_general: dims";
  if not (Imat.nonneg a && Imat.nonneg b) then
    invalid_arg "Hh_general: requires non-negative matrices"

type outcome = {
  set : (int * int) list;
  beta : float;
  lpp : float;
  recovered_nnz : int;
}

let run_full ctx prm ~a ~b =
  validate prm ~a ~b;
  let n = max (Imat.rows a) (Imat.cols b) in
  (* Step 1: ||C||_p^p — exact for p = 1, Algorithm 1 otherwise. *)
  let lpp =
    Trace.with_span ~name:"hh_general.norm_estimation"
      ~attrs:[ ("p", Matprod_obs.Json.Float prm.p) ]
    @@ fun () ->
    if prm.p = 1.0 then float_of_int (L1_exact.run ctx ~a ~b)
    else
      let eps1 = Float.min prm.lp_eps (prm.eps /. (4.0 *. prm.phi)) in
      Lp_protocol.run ctx
        (Lp_protocol.default_params ~p:prm.p ~eps:eps1 ())
        ~a ~b
  in
  if lpp <= 0.0 then { set = []; beta = 1.0; lpp; recovered_nnz = 0 }
  else begin
    (* Value-domain thresholds. *)
    let heavy_value = (prm.phi *. lpp) ** (1.0 /. prm.p) in
    let out_value = ((prm.phi -. (prm.eps /. 2.0)) *. lpp) ** (1.0 /. prm.p) in
    let beta =
      Float.min 1.0
        (prm.beta_const *. Common.log_factor n
        /. (((prm.eps /. prm.phi) ** 2.0) *. heavy_value /. 8.0))
    in
    (* Alice downsamples each unit of mass binomially. Shared with Bob only
       through the product protocol below. *)
    let a_beta =
      if beta >= 1.0 then a
      else Imat.map_values a (fun _ _ v -> Prng.binomial ctx.Ctx.alice v beta)
    in
    (* Steps 3–4: recover C^beta = C_A + C_B, additively shared. *)
    let shares =
      Trace.with_span ~name:"hh_general.sampled_product"
        ~attrs:[ ("beta", Matprod_obs.Json.Float beta) ]
        (fun () -> Matprod_protocol.run ctx ~a:a_beta ~b)
    in
    Trace.with_span ~name:"hh_general.threshold_estimation" @@ fun () ->
    (* Step 5: Alice ships her heavy share entries... *)
    let tau_alice = beta *. prm.eps *. heavy_value /. (8.0 *. prm.phi) in
    let ca_heavy =
      List.filter
        (fun (_, _, v) -> float_of_int v > tau_alice)
        (Entry_map.entries shares.Matprod_protocol.alice)
    in
    let ca_heavy' =
      Ctx.a2b ctx ~label:"heavy entries of C_A" Entry_map.wire_entries ca_heavy
    in
    (* ...and Bob thresholds the combined entries. *)
    let recovered_nnz =
      Entry_map.nnz shares.Matprod_protocol.alice
      + Entry_map.nnz shares.Matprod_protocol.bob
    in
    let c' = shares.Matprod_protocol.bob in
    List.iter (fun (i, j, v) -> Entry_map.add c' i j v) ca_heavy';
    let out = ref [] in
    Entry_map.iter c' (fun i j v ->
        if float_of_int v >= beta *. out_value then out := (i, j) :: !out);
    { set = List.sort compare !out; beta; lpp; recovered_nnz }
  end

let run ctx prm ~a ~b = (run_full ctx prm ~a ~b).set

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
