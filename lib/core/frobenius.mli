(** One-round (1±eps)‖AB‖_F² estimator on the SRHT sketch family
    (docs/SKETCHES.md).

    Bob ships SRHT sketches of his rows; Alice combines them by
    linearity into sketches of the rows of C = A·B and sums the per-row
    ‖C_i‖₂² estimates. Registered as the ["srht"] estimator; the Engine
    answers [frob:eps=..] queries from the same construction with the
    plan cached. *)

type params = { eps : float; sketch_groups : int }

val default_params : ?sketch_groups:int -> eps:float -> unit -> params

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float

val run_planned :
  Matprod_comm.Ctx.t ->
  sk:Matprod_sketch.Srht.t ->
  plan:Matprod_sketch.Srht.plan ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float
(** The exchange with a caller-supplied family and plan — the Engine's
    plan cache hands both in. The family must be built over
    [dim = max 1 (cols b)] at the run's public coins for the transcript
    to match {!run}. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (float * Outcome.diagnostics, Outcome.error) result

val wire : float array array Matprod_comm.Codec.t
