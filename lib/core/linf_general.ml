module Imat = Matprod_matrix.Imat
module Pool = Matprod_util.Pool
module Blocked_ams = Matprod_sketch.Blocked_ams
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type params = { kappa : float }

let run ctx prm ~a ~b =
  if Imat.cols a <> Imat.rows b then invalid_arg "Linf_general: dims";
  if prm.kappa < 1.0 then invalid_arg "Linf_general: kappa >= 1";
  let sk =
    Blocked_ams.create ctx.Ctx.public ~dim:(max 1 (Imat.rows a))
      ~kappa:prm.kappa
  in
  let at = Imat.transpose a in
  let alice_msg =
    Pool.init (Imat.cols a) (fun k -> Blocked_ams.sketch sk (Imat.row at k))
  in
  let sketches =
    Ctx.a2b ctx ~label:"blocked-AMS sketches of A cols"
      (Codec.array Codec.float32_array) alice_msg
  in
  let bt = Imat.transpose b in
  (* Per-column estimates fan out; the max folds sequentially in column
     order, matching the single-domain loop comparison for comparison. *)
  let ests =
    Pool.init (Imat.cols b) (fun j ->
        let acc = Blocked_ams.empty sk in
        Array.iter
          (fun (k, v) -> Blocked_ams.add_scaled sk ~dst:acc ~coeff:v sketches.(k))
          (Imat.row bt j);
        Blocked_ams.estimate_linf sk acc)
  in
  Array.fold_left (fun best est -> if est > best then est else best) 0.0 ests

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
