(** The built-in estimator adapters: every core protocol driver packaged
    behind {!Estimator.S}.

    This module only builds the list; {!Registry} installs it at load
    time. Adapters are thin — each [run] lifts the binary workload into
    the driver's native matrix type and calls the driver's documented
    entry point, and [run_safe] is the same [Outcome.capture] wrapper the
    drivers themselves use. Default queries reproduce the chaos-gallery
    parameters (small instances, coarse accuracy), so deriving the fault
    and journal suites from the registry keeps their historical
    coverage. *)

val all : Estimator.packed list
(** Every built-in adapter, in presentation order. Names are unique. *)
