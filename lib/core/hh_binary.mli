(** §5.2 / Theorem 5.3 — ℓp-(ϕ, ε)-heavy-hitters of C = A·B for binary
    matrices, O(1) rounds, Õ(n + ϕ/ε²) bits — the improvement over
    Algorithm 4 that binary structure buys.

    Step 1: a coarse ‖C‖_p estimate via Algorithm 1.
    Step 2: column universe sampling at rate β = min(α/(ϕ^{1/p}·L'_p), 1)
    (shared coins), then per-surviving-index set exchange (the Algorithm 2
    trick) leaves the parties with shares C_A + C_B = C' = A'B.
    Step 3: every share entry that looks heavy becomes a candidate; each
    candidate C_{i,j} = |A_i ∩ B^j| is then estimated to relative accuracy
    ε/(2ϕ) by sampling Õ((ϕ/ε)²) coordinates of A_i and probing B^j, and
    the verified values are thresholded into the (ϕ, ε) band. *)

type params = {
  p : float;  (** in (0, 2] *)
  phi : float;
  eps : float;  (** 0 < eps <= phi <= 1 *)
  alpha_const : float;  (** α^p = alpha_const·ln n (paper: 10⁴ log n) *)
  verify_samples_const : float;
      (** coordinate samples per candidate = const·(ϕ/ε)²·ln n *)
  lp_eps : float;  (** step-1 norm estimation accuracy *)
}

val default_params : ?p:float -> phi:float -> eps:float -> unit -> params

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (int * int) list
(** The output set S, sorted. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  ((int * int) list * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run] (see {!Outcome}). *)
