module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type sample = { row : int; col : int; witness : int }

(* Draw an index from a non-negative integer weight vector, ∝ weight. *)
let weighted_pick rng pairs total =
  let target = Prng.int rng total in
  let rec go acc = function
    | [] -> invalid_arg "L1_sampling: weights exhausted"
    | (idx, w) :: rest ->
        let acc = acc + w in
        if target < acc then idx else go acc rest
  in
  go 0 pairs

let run ctx ~a ~b =
  if Imat.cols a <> Imat.rows b then invalid_arg "L1_sampling: dims";
  if not (Imat.nonneg a && Imat.nonneg b) then
    invalid_arg "L1_sampling: requires non-negative matrices";
  let at = Imat.transpose a in
  let inner = Imat.cols a in
  (* Alice: per inner index k, the column mass and one row sampled ∝ value. *)
  let alice_msg =
    Array.init inner (fun k ->
        let col = Imat.row at k in
        let total = Array.fold_left (fun acc (_, v) -> acc + v) 0 col in
        if total = 0 then (0, -1)
        else
          let i =
            weighted_pick ctx.Ctx.alice (Array.to_list col) total
          in
          (total, i))
  in
  let msg =
    Ctx.a2b ctx ~label:"col sums + row samples"
      (Codec.array (Codec.pair Codec.uint Codec.int))
      alice_msg
  in
  (* Bob: witness k ∝ colsum_k · rowsum_k, then column j ∝ B_{k,j}. *)
  let weights =
    List.init inner (fun k -> (k, fst msg.(k) * Imat.row_l1 b k))
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total = 0 then None
  else begin
    let k = weighted_pick ctx.Ctx.bob weights total in
    let row_k = Imat.row b k in
    let row_total = Array.fold_left (fun acc (_, v) -> acc + v) 0 row_k in
    let j = weighted_pick ctx.Ctx.bob (Array.to_list row_k) row_total in
    let i = snd msg.(k) in
    Some { row = i; col = j; witness = k }
  end

(* Amortised multi-sample variant: the n column sums cross the wire once,
   then each extra sample costs O(1) words (Bob's witness, Alice's row
   draw). Coin order per sample matches [run]: Alice draws the row for the
   named witness, Bob draws the witness then the column. *)
let run_many ctx ~count ~a ~b =
  if count < 0 then invalid_arg "L1_sampling.run_many: count < 0";
  if Imat.cols a <> Imat.rows b then invalid_arg "L1_sampling: dims";
  if not (Imat.nonneg a && Imat.nonneg b) then
    invalid_arg "L1_sampling: requires non-negative matrices";
  let at = Imat.transpose a in
  let inner = Imat.cols a in
  let col_sums =
    Array.init inner (fun k ->
        Array.fold_left (fun acc (_, v) -> acc + v) 0 (Imat.row at k))
  in
  let sums =
    Ctx.a2b ctx ~label:"l1 col sums" (Codec.array Codec.uint) col_sums
  in
  (* Bob: count witnesses, each k ∝ colsum_k · rowsum_k. *)
  let weights = List.init inner (fun k -> (k, sums.(k) * Imat.row_l1 b k)) in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  let witnesses =
    if total = 0 then [||]
    else Array.init count (fun _ -> weighted_pick ctx.Ctx.bob weights total)
  in
  let witnesses =
    Ctx.b2a ctx ~label:"l1 witnesses" (Codec.array Codec.uint) witnesses
  in
  (* Alice: one row draw per witness, ∝ A_{·,k}. *)
  let rows =
    Array.map
      (fun k ->
        let col = Imat.row at k in
        let col_total = Array.fold_left (fun acc (_, v) -> acc + v) 0 col in
        weighted_pick ctx.Ctx.alice (Array.to_list col) col_total)
      witnesses
  in
  let rows = Ctx.a2b ctx ~label:"l1 row draws" (Codec.array Codec.uint) rows in
  if total = 0 then Array.make count None
  else
    Array.init count (fun t ->
        let k = witnesses.(t) in
        let row_k = Imat.row b k in
        let row_total = Array.fold_left (fun acc (_, v) -> acc + v) 0 row_k in
        let j = weighted_pick ctx.Ctx.bob (Array.to_list row_k) row_total in
        Some { row = rows.(t); col = j; witness = k })

let run_safe ctx ~a ~b = Outcome.capture ctx (fun () -> run ctx ~a ~b)

let run_many_safe ctx ~count ~a ~b =
  Outcome.capture ctx (fun () -> run_many ctx ~count ~a ~b)
