module Imat = Matprod_matrix.Imat
module Pool = Matprod_util.Pool
module Cm = Matprod_sketch.Compressed_matmul
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type params = { p : float; phi : float; eps : float; buckets : int; reps : int }

let default_params ~phi ~eps ~buckets = { p = 1.0; phi; eps; buckets; reps = 3 }

let run ctx prm ~a ~b =
  if prm.p <> 1.0 then invalid_arg "Hh_countsketch: only p = 1";
  if not (0.0 < prm.eps && prm.eps <= prm.phi && prm.phi <= 1.0) then
    invalid_arg "Hh_countsketch: need 0 < eps <= phi <= 1";
  if Imat.cols a <> Imat.rows b then invalid_arg "Hh_countsketch: dims";
  let inner = Imat.cols a in
  let cm = Cm.create ctx.Ctx.public ~buckets:prm.buckets ~reps:prm.reps in
  (* One speaking phase: ||C||_1 column sums + all half-sketches of A. *)
  let l1 = L1_exact.run ctx ~a ~b in
  if l1 = 0 then []
  else begin
    let at = Imat.transpose a in
    let halves =
      Array.init (Cm.reps cm) (fun rep ->
          Pool.init inner (fun k -> Cm.half_sketch_left cm ~rep (Imat.row at k)))
    in
    let halves' =
      Ctx.a2b ctx ~label:"countsketch halves of A cols"
        (Codec.array (Codec.array Codec.float32_array))
        halves
    in
    (* Bob: convolve with his rows' halves, then scan for heavy entries. *)
    let sketches =
      Array.init (Cm.reps cm) (fun rep ->
          let right =
            Pool.init inner (fun k -> Cm.half_sketch_right cm ~rep (Imat.row b k))
          in
          Cm.combine cm ~rep ~left:halves'.(rep) ~right)
    in
    let threshold = (prm.phi -. (prm.eps /. 2.0)) *. float_of_int l1 in
    let out = ref [] in
    for i = Imat.rows a - 1 downto 0 do
      for j = Imat.cols b - 1 downto 0 do
        if Cm.query cm ~sketches i j >= threshold then out := (i, j) :: !out
      done
    done;
    !out
  end

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
