(** Remark 3 — ℓ1-sampling of C = A·B in one round and O(n log n) bits.

    Returns an entry (i, j) with probability C_{i,j}/‖C‖₁ — a uniformly
    random tuple of the natural join. Alice sends, for every inner index k,
    her column sum ‖A_{*,k}‖₁ and one row index drawn ∝ A_{i,k}; Bob picks
    the witness k ∝ ‖A_{*,k}‖₁·‖B_{k,*}‖₁, then a column j ∝ B_{k,j}, and
    outputs (Alice's sample for k, j). *)

type sample = { row : int; col : int; witness : int }

val run :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  sample option
(** [None] iff ‖A·B‖₁ = 0. Requires non-negative matrices. *)

val run_many :
  Matprod_comm.Ctx.t ->
  count:int ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  sample option array
(** [count] independent ℓ1-samples for O(n + count) words instead of
    [count]·O(n): the column sums are shipped once, then Bob names his
    [count] witnesses and Alice answers each with one row draw (3 speaking
    phases). Each sample has exactly {!run}'s distribution. All [None]
    iff ‖A·B‖₁ = 0. Used by the batched engine to merge ℓ1-sample
    queries into one exchange. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (sample option * Outcome.diagnostics, Outcome.error) result
(** Fail-safe {!run} (see {!Outcome}). *)

val run_many_safe :
  Matprod_comm.Ctx.t ->
  count:int ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (sample option array * Outcome.diagnostics, Outcome.error) result
(** Fail-safe {!run_many} (see {!Outcome}). *)
