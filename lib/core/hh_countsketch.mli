(** The CountSketch baseline from §1.3: the "direct adaptation" of Pagh's
    compressed matrix multiplication [32] to the two-party model.

    Alice ships, for each inner index k and each repetition, the b-bucket
    half-sketch of her column A_{*,k} — Θ̃(n·b) bits in one speaking
    phase, exactly the Θ̃(n/ε²) the paper says this approach cannot beat.
    Bob convolves with his rows' half-sketches, obtains a CountSketch of
    C = A·B, and reads off the heavy entries by point queries.

    Serves as the third baseline of experiment E9 (against Algorithm 4's
    Õ(√ϕ/ε·n)). *)

type params = {
  p : float;  (** only p = 1 is supported (CountSketch thresholds on ℓ1) *)
  phi : float;
  eps : float;
  buckets : int;  (** CountSketch width b (rounded to a power of two) *)
  reps : int;
}

val default_params : phi:float -> eps:float -> buckets:int -> params

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (int * int) list
(** Output set S (sorted): all entries whose point-query estimate is at
    least (ϕ − ε/2)·‖C‖₁. Requires non-negative matrices (for the exact
    Remark 2 ℓ1). The band guarantee holds when b = Ω((‖C‖₂/ε‖C‖₁)²). *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  ((int * int) list * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run] (see {!Outcome}). *)
