module Imat = Matprod_matrix.Imat
module Lp = Matprod_sketch.Lp
module Pool = Matprod_util.Pool
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec

type params = { p : float; eps : float; sketch_groups : int }

let default_params ?(p = 0.0) ~eps () = { p; eps; sketch_groups = 5 }

let run ctx prm ~a ~b =
  if not (prm.p >= 0.0 && prm.p <= 2.0) then
    invalid_arg "Lp_oneround: p must be in [0,2]";
  if not (prm.eps > 0.0 && prm.eps <= 1.0) then
    invalid_arg "Lp_oneround: eps must be in (0,1]";
  if Imat.cols a <> Imat.rows b then invalid_arg "Lp_oneround: dims";
  let lp =
    Lp.create ctx.Ctx.public ~p:prm.p ~eps:prm.eps ~groups:prm.sketch_groups
      ~dim:(max 1 (Imat.cols b))
  in
  (* One plan per hash family, shared by every row; the fan-outs below are
     pure per-index work, so domain-pool results are placed by slot and the
     final sum folds in index order — byte-identical at any --domains. *)
  let plan = Lp.plan lp ~dim:(max 1 (Imat.cols b)) in
  let bob_sketches =
    Pool.init (Imat.rows b) (fun k -> Lp.sketch_with_plan lp plan (Imat.row b k))
  in
  let sketches =
    Ctx.b2a ctx ~label:"lp-sketches(B rows, eps)" (Codec.array (Lp.wire lp))
      bob_sketches
  in
  Pool.map_sum (Imat.rows a) (fun i ->
      Lp.estimate_pow lp (Common.combine_sketches lp sketches (Imat.row a i)))
