module Pool = Matprod_util.Pool
module Imat = Matprod_matrix.Imat
module Srht = Matprod_sketch.Srht
module Ctx = Matprod_comm.Ctx
module Codec = Matprod_comm.Codec
module Trace = Matprod_obs.Trace

(* One-round Frobenius estimator on the SRHT family: Bob ships SRHT
   sketches of his rows; Alice combines them by linearity — sk(C_i) =
   Σ_k a_ik·sk(B_k) — and sums per-row ‖C_i‖₂² estimates into
   (1±eps)‖AB‖_F². The same shape as Lp_oneround at p = 2, but the
   sketch build is the O(d log d) FWHT kernel instead of O(d·nnz)
   hashing — the win on dense rows (bench P1 crossover sweep). *)

type params = { eps : float; sketch_groups : int }

let default_params ?(sketch_groups = 5) ~eps () = { eps; sketch_groups }

let validate prm ~a ~b =
  if not (prm.eps > 0.0 && prm.eps <= 1.0) then
    invalid_arg "Frobenius: eps must be in (0,1]";
  if prm.sketch_groups <= 0 then invalid_arg "Frobenius: sketch_groups";
  if Imat.cols a <> Imat.rows b then invalid_arg "Frobenius: dims"

(* Sketch values are integer linear combinations of integer rows: exact
   in float32 for this library's workloads, like the other dense norm
   sketches (see Lp.wire on why norm sketches ship dense). *)
let wire = Codec.array Codec.float32_array

let run_planned ctx ~sk ~plan ~a ~b =
  Trace.with_span ~name:"frobenius.round1_srht_exchange"
    ~attrs:[ ("rows", Matprod_obs.Json.Int (Imat.rows b)) ]
  @@ fun () ->
  let bob_sketches =
    Pool.init (Imat.rows b) (fun k -> Srht.sketch_with_plan sk plan (Imat.row b k))
  in
  let sketches =
    Ctx.b2a ctx ~label:"srht-sketches(B rows)" wire bob_sketches
  in
  Pool.map_sum (Imat.rows a) (fun i ->
      let acc = Srht.empty sk in
      Array.iter
        (fun (k, c) -> Srht.add_scaled sk ~dst:acc ~coeff:c sketches.(k))
        (Imat.row a i);
      Float.max 0.0 (Srht.estimate_sq sk acc))

let run ctx prm ~a ~b =
  validate prm ~a ~b;
  let dim = max 1 (Imat.cols b) in
  let sk =
    Srht.create ctx.Ctx.public ~eps:prm.eps ~groups:prm.sketch_groups ~dim
  in
  let plan = Srht.plan sk ~dim in
  run_planned ctx ~sk ~plan ~a ~b

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
