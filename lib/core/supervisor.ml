module Ctx = Matprod_comm.Ctx
module Journal = Matprod_comm.Journal
module Transcript = Matprod_comm.Transcript
module Metrics = Matprod_obs.Metrics
module Trace = Matprod_obs.Trace
module Json = Matprod_obs.Json

type policy = {
  max_resumes : int;
  max_reseeds : int;
  max_bits : int option;
  max_rounds : int option;
}

let default_policy =
  { max_resumes = 2; max_reseeds = 1; max_bits = None; max_rounds = None }

let policy ?(max_resumes = 2) ?(max_reseeds = 1) ?max_bits ?max_rounds () =
  if max_resumes < 0 then invalid_arg "Supervisor: max_resumes < 0";
  if max_reseeds < 0 then invalid_arg "Supervisor: max_reseeds < 0";
  { max_resumes; max_reseeds; max_bits; max_rounds }

type rung = Initial | Resume | Reseed of int | Fallback of string

let rung_to_string = function
  | Initial -> "initial"
  | Resume -> "resume"
  | Reseed s -> Printf.sprintf "reseed(%d)" s
  | Fallback name -> Printf.sprintf "fallback(%s)" name

type attempt = {
  rung : rung;
  seed : int;
  fresh_bits : int;
  fresh_rounds : int;
  replayed_bits : int;
  failure : Outcome.error option;
}

type 'r report = {
  output : 'r;
  rung : rung;
  degraded : bool;
  attempts : attempt list;
  fresh_bits : int;
  fresh_rounds : int;
  resume_bits_saved : int;
}

let pp_report ppf show (r : _ report) =
  Format.fprintf ppf "@[<v>%s via %s after %d attempt%s (%d fresh bits"
    (show r.output) (rung_to_string r.rung)
    (List.length r.attempts)
    (if List.length r.attempts = 1 then "" else "s")
    r.fresh_bits;
  if r.resume_bits_saved > 0 then
    Format.fprintf ppf ", %d replayed" r.resume_bits_saved;
  Format.fprintf ppf ")";
  List.iter
    (fun (a : attempt) ->
      Format.fprintf ppf "@,  %-14s seed %-11d %7d bits  %s"
        (rung_to_string a.rung) a.seed a.fresh_bits
        (match a.failure with
        | None -> "ok"
        | Some e -> Outcome.error_to_string e))
    r.attempts;
  Format.fprintf ppf "@]"

let c_attempts = Metrics.counter "supervisor_attempts"
let c_resumes = Metrics.counter "supervisor_resumes"
let c_reseeds = Metrics.counter "supervisor_reseeds"
let c_fallbacks = Metrics.counter "supervisor_fallbacks"
let c_giveups = Metrics.counter "supervisor_giveups"
let c_saved = Metrics.counter "supervisor_resume_bits_saved"

(* Derived reseed seeds: deterministic, collision-free for small i, and far
   from the base seed so fault patterns keyed to it decorrelate. *)
let reseed_seed ~seed i = seed + (104729 * i)

(* How the journal/replay machinery is armed for one attempt. *)
type mode = Plain | Record of string | Resume_journal of string * Journal.t

let run ?(policy = default_policy) ?journal ?wire ?names ?transport
    ?(fallbacks = []) ~seed ~protocol f =
  let attempts = ref [] in
  let fresh_bits = ref 0 and fresh_rounds = ref 0 in
  let saved = ref 0 in
  let attempt_no = ref 0 in
  (* One guarded run of [driver] at [seed] under [mode]; cost is counted
     even when the driver dies. *)
  let scope_name ~rung n =
    Printf.sprintf "attempt%d-%s" n
      (match rung with
      | Initial -> "initial"
      | Resume -> "resume"
      | Reseed _ -> "reseed"
      | Fallback name -> "fallback-" ^ name)
  in
  let exec ~rung ~seed ~mode driver =
    incr attempt_no;
    (* Each attempt gets its own metrics scope (and, since the supervisor
       builds its Ctx by hand rather than via Ctx.run, its own trace id),
       so retries no longer conflate into one blob of counters. *)
    Metrics.in_scope (scope_name ~rung !attempt_no) @@ fun () ->
    Trace.with_trace ~seed @@ fun () ->
    if Metrics.enabled () then begin
      Metrics.incr c_attempts;
      match rung with
      | Initial -> ()
      | Resume -> Metrics.incr c_resumes
      | Reseed _ -> Metrics.incr c_reseeds
      | Fallback _ -> Metrics.incr c_fallbacks
    end;
    Trace.with_span ~name:"supervisor.attempt"
      ~attrs:
        [
          ("rung", Json.String (rung_to_string rung));
          ("protocol", Json.String protocol);
          ("seed", Json.Int seed);
          ("attempt", Json.Int !attempt_no);
        ]
    @@ fun () ->
    (* Transports hold OS state, so each attempt opens a fresh connection
       via the factory and [Ctx.close] releases it win or lose. *)
    let tr_conn = Option.map (fun factory -> factory ()) transport in
    let ctx =
      match names with
      | None -> Ctx.create ?transport:tr_conn ~seed ()
      | Some names -> Ctx.create_named ?transport:tr_conn ~names ~seed ()
    in
    let result =
      Outcome.guard (fun () ->
          (match mode with
          | Plain -> ()
          | Record path -> Ctx.record ctx ~journal:path ~protocol
          | Resume_journal (path, j) -> Ctx.resume_from ctx ~path j);
          (match wire with
          | Some install -> install ~attempt:!attempt_no ctx
          | None -> ());
          driver ctx)
    in
    Ctx.close ctx;
    let tr = Ctx.transcript ctx in
    let bits = Transcript.total_bits tr in
    let rounds = Transcript.rounds tr in
    let rs = Ctx.replay_stats ctx in
    let replayed_bits = 8 * rs.Matprod_comm.Channel.replayed_bytes in
    fresh_bits := !fresh_bits + bits;
    fresh_rounds := !fresh_rounds + rounds;
    saved := !saved + replayed_bits;
    if Metrics.enabled () then Metrics.incr_by c_saved replayed_bits;
    let failure = match result with Ok _ -> None | Error e -> Some e in
    attempts :=
      { rung; seed; fresh_bits = bits; fresh_rounds = rounds; replayed_bits;
        failure }
      :: !attempts;
    result
  in
  let finish output rung =
    Ok
      {
        output;
        rung;
        degraded = (match rung with Fallback _ -> true | _ -> false);
        attempts = List.rev !attempts;
        fresh_bits = !fresh_bits;
        fresh_rounds = !fresh_rounds;
        resume_bits_saved = !saved;
      }
  in
  let give_up err =
    if Metrics.enabled () then Metrics.incr c_giveups;
    if Trace.enabled () then
      Trace.event ~name:"supervisor.give_up"
        ~attrs:
          [
            ("protocol", Json.String protocol);
            ("error", Json.String (Outcome.error_to_string err));
          ]
        ();
    Error err
  in
  (* Budget gate between rungs: escalating costs more bits; refuse when the
     cumulative spend already exceeds the cap. *)
  let over_budget () =
    match
      ( (match policy.max_bits with
        | Some limit when !fresh_bits >= limit -> Some ("bits", !fresh_bits, limit)
        | _ -> None),
        policy.max_rounds )
    with
    | Some b, _ -> Some b
    | None, Some limit when !fresh_rounds >= limit ->
        Some ("rounds", !fresh_rounds, limit)
    | None, _ -> None
  in
  let budget_error (resource, spent, limit) =
    Outcome.Budget_exhausted { resource; spent; limit }
  in
  (* A usable journal: same seed, at least one delivered message. *)
  let journal_for_resume () =
    match journal with
    | None -> None
    | Some path -> (
        match Journal.load path with
        | Ok j when j.Journal.seed = seed && j.Journal.entries <> [] -> Some (path, j)
        | Ok _ | Error _ -> None)
  in
  let rec fallback_rung last_err = function
    | [] -> give_up last_err
    | (name, driver) :: rest -> (
        match over_budget () with
        | Some b -> give_up (budget_error b)
        | None -> (
            match exec ~rung:(Fallback name) ~seed ~mode:Plain driver with
            | Ok v -> finish v (Fallback name)
            | Error err -> fallback_rung err rest))
  in
  let rec reseed_rung last_err i =
    if i > policy.max_reseeds then fallback_rung last_err fallbacks
    else
      match over_budget () with
      | Some b -> give_up (budget_error b)
      | None -> (
          let seed' = reseed_seed ~seed i in
          let mode =
            match journal with None -> Plain | Some path -> Record path
          in
          match exec ~rung:(Reseed seed') ~seed:seed' ~mode f with
          | Ok v -> finish v (Reseed seed')
          | Error err -> reseed_rung err (i + 1))
  in
  let rec resume_rung last_err i =
    if i > policy.max_resumes then reseed_rung last_err 1
    else
      match over_budget () with
      | Some b -> give_up (budget_error b)
      | None -> (
          match journal_for_resume () with
          | None -> reseed_rung last_err 1
          | Some (path, j) -> (
              match
                exec ~rung:Resume ~seed ~mode:(Resume_journal (path, j)) f
              with
              | Ok v -> finish v Resume
              | Error err -> resume_rung err (i + 1)))
  in
  let mode = match journal with None -> Plain | Some path -> Record path in
  match exec ~rung:Initial ~seed ~mode f with
  | Ok v -> finish v Initial
  | Error err -> resume_rung err 1
