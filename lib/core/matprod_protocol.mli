(** Distributed matrix multiplication (our concrete stand-in for
    Lemma 2.5, the [16] protocol): Alice and Bob end up with sparse
    matrices C_A and C_B such that C_A + C_B = A·B exactly.

    Per inner index k, the party whose vector (Alice's column A_{*,k},
    Bob's row B_{k,*}) has the smaller support ships it; the receiving
    party accumulates the outer product into its share. Communication is
    Σ_k min(nnz A_{*,k}, nnz B_{k,*}) words ≤ √(n·‖|A||B|‖₁) — on the
    polylog-sparse products Algorithm 4 applies it to, well within the
    paper's Õ(n·√‖AB‖₀) budget. 3 speaking phases. *)

type shares = { alice : Common.Entry_map.t; bob : Common.Entry_map.t }

val run :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  shares
(** Requires cols a = rows b. [shares.alice] + [shares.bob] = A·B. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (shares * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run] (see {!Outcome}). *)
