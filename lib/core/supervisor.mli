(** Degradation supervisor: a typed, costed escalation ladder over any
    protocol driver.

    A single [run_safe] gives the trichotomy for one attempt; the
    supervisor decides what to do when that attempt fails, spending a
    bounded budget along a fixed ladder:

    + {b Resume} — rerun at the {e same seed}, fast-forwarding through the
      write-ahead {!Matprod_comm.Journal} of the failed attempt: the bits
      already paid for (e.g. Algorithm 1's round-1 sketches) are replayed
      for free and only the remainder touches the wire. Taken while a
      journal with at least one entry exists and [max_resumes] allows.
    + {b Reseed} — full rerun at a fresh deterministic seed (journal
      restarted); the escape hatch when the failure tracks the seed (e.g.
      a fault pattern that keeps killing the same message).
    + {b Degrade} — run the registered fallback drivers in order (e.g.
      ℓp → exact ℓ1, κ-approx ℓ∞ → trivial): a coarser or costlier answer
      beats no answer for a query planner, and the caller can see the
      degradation in the report.
    + {b Give up} — return the last typed error.

    Every attempt is guarded ({!Outcome.guard}), its cost is counted even
    when it fails, and cumulative fresh bits/rounds are checked against
    the budget before each new rung — blowing the budget returns
    {!Outcome.Budget_exhausted}. Decisions are observable: span
    [supervisor.attempt] per attempt, counters [supervisor_attempts],
    [supervisor_resumes], [supervisor_reseeds], [supervisor_fallbacks],
    [supervisor_giveups], [supervisor_resume_bits_saved]
    (docs/ROBUSTNESS.md). *)

type policy = {
  max_resumes : int;  (** journal-resume attempts after the initial run *)
  max_reseeds : int;  (** fresh-seed full reruns after resumes run out *)
  max_bits : int option;  (** cumulative fresh-bit budget across attempts *)
  max_rounds : int option;  (** cumulative round budget across attempts *)
}

val default_policy : policy
(** 2 resumes, 1 reseed, no budget caps. *)

val policy :
  ?max_resumes:int ->
  ?max_reseeds:int ->
  ?max_bits:int ->
  ?max_rounds:int ->
  unit ->
  policy

(** Which rung produced an attempt. *)
type rung =
  | Initial
  | Resume  (** same seed, journal fast-forward *)
  | Reseed of int  (** the fresh seed used *)
  | Fallback of string  (** registered fallback protocol name *)

val rung_to_string : rung -> string

(** One guarded run and what it cost. [replayed_bits] are journal bits
    served for free; [fresh_bits] is what actually crossed the wire. *)
type attempt = {
  rung : rung;
  seed : int;
  fresh_bits : int;
  fresh_rounds : int;
  replayed_bits : int;
  failure : Outcome.error option;  (** [None] = this attempt succeeded *)
}

type 'r report = {
  output : 'r;
  rung : rung;  (** the rung that produced [output] *)
  degraded : bool;  (** [true] iff a fallback answered *)
  attempts : attempt list;  (** in execution order, successes included *)
  fresh_bits : int;  (** cumulative over all attempts *)
  fresh_rounds : int;  (** cumulative over all attempts *)
  resume_bits_saved : int;
      (** journal bits replayed instead of resent, over all resumes *)
}

val pp_report :
  Format.formatter -> ('r -> string) -> 'r report -> unit

val run :
  ?policy:policy ->
  ?journal:string ->
  ?wire:(attempt:int -> Matprod_comm.Ctx.t -> unit) ->
  ?names:(Matprod_comm.Transcript.party -> string) ->
  ?transport:Matprod_comm.Transport.factory ->
  ?fallbacks:(string * (Matprod_comm.Ctx.t -> 'r)) list ->
  seed:int ->
  protocol:string ->
  (Matprod_comm.Ctx.t -> 'r) ->
  ('r report, Outcome.error) result
(** Drive [protocol]'s body up the ladder. [?journal] names the
    write-ahead log file and enables the Resume rung (without it the
    ladder goes straight to Reseed). [?wire] installs the fault model for
    each attempt — it receives the 1-based attempt number, so a test can
    crash only the first attempt the way a real transient crash would.
    [?names] renames the wire roles for observability on every attempt's
    context (see {!Matprod_comm.Ctx.create}) — the fleet supervisor passes
    ["worker<i>"]/["coordinator"]. [?transport] is a {e factory}: each
    attempt opens a fresh physical connection through it (transports hold
    OS state) and closes it when the attempt ends, win or lose.
    Fallbacks run at the original seed under the same wire. The error on
    [Error] is the last rung's typed error, or {!Outcome.Budget_exhausted}
    when the budget gated further rungs. Never raises on wire/crash/
    precondition failures; genuine bugs still escape ({!Outcome.guard}). *)
