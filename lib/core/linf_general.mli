(** Theorem 4.8(1) — κ-approximation of ‖A·B‖∞ for arbitrary integer
    matrices in one round and Õ(n²/κ²) bits.

    Alice ships a blocked-AMS ℓ∞ sketch (Õ(n/κ²) floats) of each of her n
    columns; Bob combines them into sketches of every column of C = A·B
    (C_{*,j} = Σ_k B_{k,j}·A_{*,k}) and outputs the largest per-column
    estimate. The companion Ω̃(n²/κ²) lower bound (via Gap-ℓ∞) lives in
    [Matprod_lowerbounds]. *)

type params = { kappa : float }

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  float
(** κ-approximation of ‖A·B‖∞ = max |C_{i,j}|. *)

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Imat.t ->
  b:Matprod_matrix.Imat.t ->
  (float * Outcome.diagnostics, Outcome.error) result
(** Fail-safe [run] (see {!Outcome}). *)
