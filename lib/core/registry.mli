(** Central estimator registry: name → packed {!Estimator}, enumerable.

    Every core driver is installed at load time (from
    {!Estimator_impls.all}); extensions may {!register} more. The chaos
    gallery ([test/test_faults.ml]), the journal byte-identity suite
    ([test/test_plan.ml]), and the CLI's [estimate] subcommand all
    enumerate {!all}, so an estimator registered here automatically gains
    fault, crash-recovery, and domain-determinism coverage — and one that
    is {e not} registered fails the registry-coverage test. *)

val register : Estimator.packed -> unit
(** Install an estimator. Raises [Invalid_argument] on a duplicate name. *)

val find : string -> Estimator.packed option

val all : unit -> Estimator.packed list
(** Built-ins first (in {!Estimator_impls.all} order), then extensions in
    registration order. *)

val names : unit -> string list
(** The names of {!all}, same order. *)
