module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Ctx = Matprod_comm.Ctx

type params = { kappa : float; alpha_const : float }

let default_params ~kappa = { kappa; alpha_const = 8.0 }

type result = { estimate : float; level : int; q : float }

let run ctx prm ~a ~b =
  if Bmat.cols a <> Bmat.rows b then invalid_arg "Linf_kappa: dims";
  if prm.kappa < 1.0 then invalid_arg "Linf_kappa: kappa >= 1";
  let inner = Bmat.cols a in
  let n = max (Bmat.rows a) (Bmat.cols b) in
  let alpha = prm.alpha_const *. Common.log_factor n in
  let q = Float.min 1.0 (alpha /. prm.kappa) in
  (* Universe sampling with shared coins: both parties know the surviving
     columns of A, so no communication is charged for it. *)
  let survives = Array.init inner (fun _ -> Prng.bernoulli ctx.Ctx.public q) in
  let a' = Bmat.filter_entries a (fun _ k -> survives.(k)) in
  (* ||D||_1 and ||C||_1 via the Remark 2 identity (exchange column sums of
     A and A'); fold both into the Algorithm 2 engine's round 1 by checking
     emptiness first with one cheap exact exchange. *)
  let d_l1 = L1_exact.run_bool ctx ~a:a' ~b in
  if d_l1 = 0 then begin
    let c_l1 = L1_exact.run_bool ctx ~a ~b in
    { estimate = (if c_l1 = 0 then 0.0 else 1.0); level = 0; q }
  end
  else begin
    let threshold =
      alpha /. prm.kappa *. float_of_int (Bmat.rows a) *. float_of_int (Bmat.cols b)
    in
    let r = Linf_binary.run_with ctx ~base:2.0 ~threshold ~a:a' ~b in
    { estimate = r.Linf_binary.estimate /. q; level = r.Linf_binary.level; q }
  end

let run_safe ctx prm ~a ~b = Outcome.capture ctx (fun () -> run ctx prm ~a ~b)
