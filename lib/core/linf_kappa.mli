(** Algorithm 3 — κ-approximation of ‖A·B‖∞ for binary matrices in O(1)
    rounds and Õ(n^1.5/κ) bits (Theorem 4.3), for κ ∈ [4, n].

    Adds a universe-sampling step in front of the Algorithm 2 machinery:
    columns of A survive with probability q = min(α/κ, 1) (shared coins),
    shrinking both the universe and ‖C‖₁ by a factor κ. If the sampled
    product D = A'B is all-zero the answer is already pinned down to
    {0, 1-ish} by the event E5, and the protocol answers from ‖C‖₁ alone;
    otherwise it runs the level search with rate 1/2 and threshold
    α·n·m/κ and rescales by 1/(q·p_{ℓ*}). *)

type params = {
  kappa : float;  (** approximation target, ≥ 4 per Theorem 4.3 *)
  alpha_const : float;  (** α = alpha_const·ln n; the paper proves 10⁴ *)
}

val default_params : kappa:float -> params

type result = {
  estimate : float;
  level : int;
  q : float;  (** universe sampling rate used *)
}

val run :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  result

val run_safe :
  Matprod_comm.Ctx.t ->
  params ->
  a:Matprod_matrix.Bmat.t ->
  b:Matprod_matrix.Bmat.t ->
  (result * Outcome.diagnostics, Outcome.error) Stdlib.result
(** Fail-safe [run] (see {!Outcome}). *)
