(** Blocking client for the serve daemon.

    One [t] is one session; requests may be pipelined ({!send} repeatedly,
    then {!response} in the same order — the server answers per-connection
    requests in order). The convenience wrappers ({!gen}, {!batch}) do one
    round trip. *)

type t

val connect :
  ?host:string -> ?retries:int -> port:int -> session_seed:int -> unit -> t
(** Connect, send [Hello { session_seed }], and wait for [Welcome].
    Connection refusals are retried ([retries] × 50 ms, default 100 —
    covers a daemon still binding its socket); protocol violations raise
    [Failure]. *)

val session : t -> int
(** The server-side session number from [Welcome]. *)

val session_seed : t -> int

val send : t -> Proto.request -> unit
(** Fire one request without waiting. *)

val response : t -> Proto.response
(** Block for the next response frame. Raises [End_of_file] when the
    server closed the connection. *)

val response_raw : t -> string
(** Like {!response} but returns the undecoded frame payload — load
    generators digest these bytes. Decode with {!Proto.decode_response}. *)

val gen :
  t -> name:string -> n:int -> density:float -> seed:int -> zipf:bool ->
  (int * int, string) result
(** Ask the server to synthesise (or reuse) a named pair; returns
    [(rows, cols)]. *)

val batch :
  t -> id:int -> pair:string -> specs:string list ->
  (Proto.response, string) result
(** One synchronous batch: [Ok (Answers _)] or [Error msg] (the server's
    [Err] payload, or a description of an out-of-protocol reply). *)

val quit : t -> unit
(** Send [Quit] and close the socket. Idempotent. *)

val close : t -> unit
(** Close without the goodbye (simulates a client crash). Idempotent. *)
