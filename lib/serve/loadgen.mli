(** Closed-loop load generator for the serve daemon.

    [connections] client sessions connect concurrently; each shares one
    server-side workload pair, then pipelines [batches] batch requests of
    [queries] specs each {e without reading} — so once every connection
    has fired its last batch, [connections × batches × queries] queries
    are simultaneously in flight (measured at the rendezvous barrier, not
    assumed). Only then do the clients drain their responses, timing each
    batch from its send to its answer — queueing delay included, which is
    the honest latency under load.

    Sessions seed deterministically from [(seed, connection index)], so
    the digest of all response bytes is reproducible run to run — the
    bench regression gate compares it exactly while timing fields vary. *)

type report = {
  connections : int;
  batches_per_connection : int;
  queries_per_batch : int;
  queries : int;  (** total submitted *)
  answered : int;
  errors : int;  (** queries whose batch came back [Err] (or died) *)
  in_flight : int;  (** peak concurrent in-flight queries, measured *)
  elapsed_ns : int;  (** first send to last answer, across connections *)
  qps : float;  (** answered / elapsed *)
  p50_ns : int;  (** per-query latency percentiles *)
  p90_ns : int;
  p99_ns : int;
  bits : int;  (** summed transcript bits over all answered batches *)
  replayed_bits : int;
  digest : int;  (** order-independent CRC32 sum of response payloads *)
}

val run :
  ?host:string ->
  port:int ->
  connections:int ->
  batches:int ->
  queries:int ->
  n:int ->
  density:float ->
  seed:int ->
  specs:string list ->
  unit ->
  report
(** [specs] is the base query list, cycled to [queries] per batch. Raises
    [Invalid_argument] on non-positive counts or empty [specs]. *)
