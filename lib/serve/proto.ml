module Codec = Matprod_comm.Codec
module Imat = Matprod_matrix.Imat
module Engine = Matprod_engine.Engine
module L0 = Matprod_core.L0_sampling
module L1 = Matprod_core.L1_sampling
module Prng = Matprod_util.Prng

type request =
  | Hello of { session_seed : int }
  | Gen of { name : string; n : int; density : float; seed : int; zipf : bool }
  | Register of { name : string; a : Imat.t; b : Imat.t }
  | Batch of { id : int; pair : string; specs : string list }
  | Quit

type response =
  | Welcome of { session : int }
  | Ready of { name : string; rows : int; cols : int }
  | Answers of {
      id : int;
      bits : int;
      rounds : int;
      replayed_bits : int;
      answers : Engine.answer list;
    }
  | Err of string

let imat : Imat.t Codec.t =
  Codec.map
    (fun m ->
      ( (Imat.rows m, Imat.cols m),
        Array.init (Imat.rows m) (fun i -> Imat.row m i) ))
    (fun ((rows, cols), rws) -> Imat.create ~rows ~cols rws)
    Codec.(pair (pair uint uint) (array (array (pair uint int))))

let l0_sample : L0.sample Codec.t =
  Codec.map
    (fun { L0.row; col; value } -> (row, col, value))
    (fun (row, col, value) -> { L0.row; col; value })
    Codec.(triple uint uint int)

let l1_sample : L1.sample Codec.t =
  Codec.map
    (fun { L1.row; col; witness } -> (row, col, witness))
    (fun (row, col, witness) -> { L1.row; col; witness })
    Codec.(triple uint uint int)

let share_entries : (int * int * int) list Codec.t =
  Codec.(list (triple uint uint int))

let bad_tag what tag =
  raise
    (Codec.Decode_error (Printf.sprintf "%s: unknown tag %d" what tag))

(* Tagged unions ride as (tag, payload): the payload is the case's own
   codec run through [bytes], so each case stays independently framed. *)
let answer : Engine.answer Codec.t =
  let enc c v = Codec.encode c v and dec c s = Codec.decode c s in
  let ranked = Codec.(list (pair uint float64)) in
  let entries = Codec.(list (pair uint uint)) in
  let l0s = Codec.(array (option l0_sample)) in
  let l1s = Codec.(array (option l1_sample)) in
  let shares = Codec.(pair share_entries share_entries) in
  Codec.map
    (function
      | Engine.Scalar f -> (0, enc Codec.float64 f)
      | Engine.Vector v -> (1, enc Codec.float_array v)
      | Engine.Ranked l -> (2, enc ranked l)
      | Engine.Entry_set l -> (3, enc entries l)
      | Engine.L0_samples s -> (4, enc l0s s)
      | Engine.L1_samples s -> (5, enc l1s s)
      | Engine.Shares (sa, sb) -> (6, enc shares (sa, sb)))
    (fun (tag, payload) ->
      match tag with
      | 0 -> Engine.Scalar (dec Codec.float64 payload)
      | 1 -> Engine.Vector (dec Codec.float_array payload)
      | 2 -> Engine.Ranked (dec ranked payload)
      | 3 -> Engine.Entry_set (dec entries payload)
      | 4 -> Engine.L0_samples (dec l0s payload)
      | 5 -> Engine.L1_samples (dec l1s payload)
      | 6 ->
          let sa, sb = dec shares payload in
          Engine.Shares (sa, sb)
      | t -> bad_tag "answer" t)
    Codec.(pair uint bytes)

let gen_body = Codec.(pair bytes (pair (triple uint float64 int) bool))
let register_body = Codec.(triple bytes imat imat)
let batch_body = Codec.(triple uint bytes (list bytes))

let request : request Codec.t =
  let enc c v = Codec.encode c v and dec c s = Codec.decode c s in
  Codec.map
    (function
      | Hello { session_seed } -> (0, enc Codec.int session_seed)
      | Gen { name; n; density; seed; zipf } ->
          (1, enc gen_body (name, ((n, density, seed), zipf)))
      | Register { name; a; b } -> (2, enc register_body (name, a, b))
      | Batch { id; pair; specs } -> (3, enc batch_body (id, pair, specs))
      | Quit -> (4, ""))
    (fun (tag, payload) ->
      match tag with
      | 0 -> Hello { session_seed = dec Codec.int payload }
      | 1 ->
          let name, ((n, density, seed), zipf) = dec gen_body payload in
          Gen { name; n; density; seed; zipf }
      | 2 ->
          let name, a, b = dec register_body payload in
          Register { name; a; b }
      | 3 ->
          let id, pair, specs = dec batch_body payload in
          Batch { id; pair; specs }
      | 4 -> Quit
      | t -> bad_tag "request" t)
    Codec.(pair uint bytes)

let ready_body = Codec.(triple bytes uint uint)
let answers_body = Codec.(pair (pair uint (triple uint uint uint)) (list answer))

let response : response Codec.t =
  let enc c v = Codec.encode c v and dec c s = Codec.decode c s in
  Codec.map
    (function
      | Welcome { session } -> (0, enc Codec.uint session)
      | Ready { name; rows; cols } -> (1, enc ready_body (name, rows, cols))
      | Answers { id; bits; rounds; replayed_bits; answers } ->
          (2, enc answers_body ((id, (bits, rounds, replayed_bits)), answers))
      | Err msg -> (3, msg))
    (fun (tag, payload) ->
      match tag with
      | 0 -> Welcome { session = dec Codec.uint payload }
      | 1 ->
          let name, rows, cols = dec ready_body payload in
          Ready { name; rows; cols }
      | 2 ->
          let (id, (bits, rounds, replayed_bits)), answers =
            dec answers_body payload
          in
          Answers { id; bits; rounds; replayed_bits; answers }
      | 3 -> Err payload
      | t -> bad_tag "response" t)
    Codec.(pair uint bytes)

let encode_request = Codec.encode request
let decode_request = Codec.decode request
let encode_response = Codec.encode response
let decode_response = Codec.decode response

let batch_seed ~session_seed ~batch_id =
  Prng.fresh_seed (Prng.derive session_seed batch_id 0x5e7e)

let journal_name ~session_seed ~batch_id =
  Printf.sprintf "s%d.b%d.mpj" session_seed batch_id
