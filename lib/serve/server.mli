(** The [matprod serve] daemon: a long-lived estimator service.

    One server holds a registry of named matrix pairs and one shared
    {!Matprod_engine.Engine} (so the plan cache warms across sessions),
    accepts concurrent connections on a TCP socket, and runs each
    connection as a session: [Hello] fixes the session seed, then any mix
    of [Gen]/[Register]/[Batch] requests, pipelined at will — the server
    answers in request order per connection while other sessions proceed
    on their own threads.

    Concurrency model: connection I/O is thread-per-session; everything
    that touches shared state (the pair registry, the engine and its plan
    cache, the {!Matprod_util.Pool} fan-out, metrics, journals) runs
    under one compute lock — a single execution engine fed by many
    pipelined sessions. Each batch executes inside a per-session
    {!Matprod_obs.Metrics} scope ([session<n>]) so per-session tables
    survive aggregation.

    Crash recovery: with a journal directory configured, every batch
    writes a write-ahead journal named by [(session_seed, batch_id)]
    ({!Proto.journal_name}). A re-requested batch whose journal already
    exists resumes through {!Matprod_comm.Ctx.resume} — a completed
    prefix is replayed with zero fresh bits.

    Shutdown: {!stop} is async-signal-safe (it only flips an atomic); the
    accept loop notices within its poll interval, stops accepting, drains
    live sessions for a grace period, force-closes stragglers, then
    {!Matprod_util.Pool.shutdown} joins the worker domains. *)

type config = {
  host : string;  (** default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral; read the bound port back with {!port} *)
  journal_dir : string option;
      (** created if missing; [None] disables batch journaling *)
  plan_cache : int;  (** engine plan-cache capacity *)
  grace_s : float;  (** drain budget before live sessions are cut *)
}

val default_config : config
(** 127.0.0.1:0, no journaling, plan cache 16, 5 s grace. *)

type t

val create : config -> t
(** Bind and listen (raises [Unix.Unix_error] on a busy port). The
    socket is live from here on — a client may connect before {!serve}
    starts accepting. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val serve : t -> unit
(** Run the accept loop on the calling thread until {!stop}; returns
    after the drain completes. *)

val stop : t -> unit
(** Request shutdown. Async-signal-safe and idempotent; callable from a
    [Sys.Signal_handle]. *)

val serve_background : t -> Thread.t
(** {!serve} on a fresh thread — for tests and in-process benches. *)

(** Cumulative accounting, readable after {!serve} returns. *)
type stats = {
  sessions : int;
  batches : int;
  queries : int;
  batch_errors : int;
}

val stats : t -> stats
