module Transport = Matprod_comm.Transport

type t = {
  fd : Unix.file_descr;
  session : int;
  session_seed : int;
  mutable closed : bool;
}

let send_fd fd req = Transport.write_frame fd (Proto.encode_request req)

let connect ?(host = "127.0.0.1") ?(retries = 100) ~port ~session_seed () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec dial attempt =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENETUNREACH), _, _)
      when attempt < retries ->
        Unix.close fd;
        Thread.delay 0.05;
        dial (attempt + 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  let fd = dial 0 in
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  match
    send_fd fd (Proto.Hello { session_seed });
    Proto.decode_response (Transport.read_frame fd)
  with
  | Proto.Welcome { session } -> { fd; session; session_seed; closed = false }
  | Proto.Err e ->
      Unix.close fd;
      failwith (Printf.sprintf "connect: server refused: %s" e)
  | _ ->
      Unix.close fd;
      failwith "connect: protocol error: expected Welcome"
  | exception e ->
      Unix.close fd;
      raise e

let session t = t.session
let session_seed t = t.session_seed
let send t req = send_fd t.fd req
let response_raw t = Transport.read_frame t.fd
let response t = Proto.decode_response (response_raw t)

let gen t ~name ~n ~density ~seed ~zipf =
  send t (Proto.Gen { name; n; density; seed; zipf });
  match response t with
  | Proto.Ready { rows; cols; _ } -> Ok (rows, cols)
  | Proto.Err e -> Error e
  | _ -> Error "protocol error: expected Ready"

let batch t ~id ~pair ~specs =
  send t (Proto.Batch { id; pair; specs });
  match response t with
  | Proto.Answers _ as a -> Ok a
  | Proto.Err e -> Error e
  | _ -> Error "protocol error: expected Answers"

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let quit t =
  if not t.closed then begin
    (try send t Proto.Quit with Unix.Unix_error _ -> ());
    close t
  end
