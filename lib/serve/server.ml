module Transport = Matprod_comm.Transport
module Codec = Matprod_comm.Codec
module Ctx = Matprod_comm.Ctx
module Journal = Matprod_comm.Journal
module Engine = Matprod_engine.Engine
module Imat = Matprod_matrix.Imat
module Bmat = Matprod_matrix.Bmat
module Workload = Matprod_workload.Workload
module Prng = Matprod_util.Prng
module Metrics = Matprod_obs.Metrics

type config = {
  host : string;
  port : int;
  journal_dir : string option;
  plan_cache : int;
  grace_s : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    journal_dir = None;
    plan_cache = 16;
    grace_s = 5.0;
  }

type stats = {
  sessions : int;
  batches : int;
  queries : int;
  batch_errors : int;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  engine : Engine.t;
  (* [m] guards the registry, connection list, and counters; [exec] is the
     compute lock — engine, pool fan-out, metrics scopes, and journals are
     single-writer shared state fed by many pipelined sessions. Never hold
     both at once. *)
  m : Mutex.t;
  exec : Mutex.t;
  pairs : (string, Imat.t * Imat.t) Hashtbl.t;
  mutable conns : Unix.file_descr list;
  mutable active : int;
  mutable sessions : int;
  mutable batches : int;
  mutable queries : int;
  mutable batch_errors : int;
}

let c_sessions = Metrics.counter "serve_sessions"
let c_batches = Metrics.counter "serve_batches"
let c_queries = Metrics.counter "serve_queries"
let c_errors = Metrics.counter "serve_batch_errors"
let h_batch = Metrics.histogram "serve_batch_ns"

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create cfg =
  Option.iter mkdir_p cfg.journal_dir;
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.listen listener 128
   with e ->
     Unix.close listener;
     raise e);
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  {
    cfg;
    listener;
    bound_port;
    stop_flag = Atomic.make false;
    engine = Engine.create ~plan_cache_capacity:cfg.plan_cache ();
    m = Mutex.create ();
    exec = Mutex.create ();
    pairs = Hashtbl.create 16;
    conns = [];
    active = 0;
    sessions = 0;
    batches = 0;
    queries = 0;
    batch_errors = 0;
  }

let port t = t.bound_port
let stop t = Atomic.set t.stop_flag true

let stats t =
  Mutex.lock t.m;
  let s =
    {
      sessions = t.sessions;
      batches = t.batches;
      queries = t.queries;
      batch_errors = t.batch_errors;
    }
  in
  Mutex.unlock t.m;
  s

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* The CLI generator's pair, replicated so `Gen` answers match a local
   `gen_pair` run at the same parameters bit for bit. *)
let gen_pair ~zipf ~seed ~n ~density =
  let root = Prng.create seed in
  let rng_a = Prng.split root in
  let rng_b = Prng.split root in
  let a, b =
    if zipf then
      let deg = max 1 (int_of_float (density *. float_of_int n)) in
      ( Workload.zipf_bool rng_a ~rows:n ~cols:n ~row_degree:deg ~skew:1.1,
        Bmat.transpose
          (Workload.zipf_bool rng_b ~rows:n ~cols:n ~row_degree:deg ~skew:1.1)
      )
    else
      ( Workload.uniform_bool rng_a ~rows:n ~cols:n ~density,
        Workload.uniform_bool rng_b ~rows:n ~cols:n ~density )
  in
  (Imat.of_bmat a, Imat.of_bmat b)

let respond fd resp = Transport.write_frame fd (Proto.encode_response resp)

let store_pair t name pair =
  locked t.m (fun () -> Hashtbl.replace t.pairs name pair)

let find_pair t name = locked t.m (fun () -> Hashtbl.find_opt t.pairs name)

let ready name (a, _b) =
  Proto.Ready { name; rows = Imat.rows a; cols = Imat.cols a }

let do_gen t ~name ~n ~density ~seed ~zipf =
  if n < 1 || n > 65536 then Proto.Err "gen: n outside [1, 65536]"
  else if density < 0.0 || density > 1.0 then
    Proto.Err "gen: density outside [0, 1]"
  else begin
    (* Deterministic in its parameters, so a duplicate Gen (another
       session, same workload) can reuse the stored pair. *)
    match find_pair t name with
    | Some pair -> ready name pair
    | None ->
        let pair = locked t.exec (fun () -> gen_pair ~zipf ~seed ~n ~density) in
        store_pair t name pair;
        ready name pair
  end

let do_register t ~name ~a ~b =
  if Imat.cols a <> Imat.rows b then
    Proto.Err
      (Printf.sprintf "register: cols a = %d <> rows b = %d" (Imat.cols a)
         (Imat.rows b))
  else begin
    store_pair t name (a, b);
    ready name (a, b)
  end

let count_batch t ~queries ~failed =
  locked t.m (fun () ->
      t.batches <- t.batches + 1;
      t.queries <- t.queries + queries;
      if failed then t.batch_errors <- t.batch_errors + 1)

let parse_specs specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match Engine.query_of_string s with
        | Ok q -> go (q :: acc) rest
        | Error e -> Error (Printf.sprintf "bad query spec %S: %s" s e))
  in
  go [] specs

let do_batch t ~session ~session_seed ~id ~pair ~specs =
  match find_pair t pair with
  | None -> Proto.Err (Printf.sprintf "batch %d: unknown pair %S" id pair)
  | Some (a, b) -> (
      match parse_specs specs with
      | Error e -> Proto.Err (Printf.sprintf "batch %d: %s" id e)
      | Ok [] -> Proto.Err (Printf.sprintf "batch %d: empty" id)
      | Ok queries -> (
          let seed = Proto.batch_seed ~session_seed ~batch_id:id in
          let body ctx = Engine.run t.engine ctx ~a ~b queries in
          let exec () =
            locked t.exec @@ fun () ->
            Metrics.in_scope (Printf.sprintf "session%d" session) @@ fun () ->
            Metrics.timed h_batch @@ fun () ->
            match t.cfg.journal_dir with
            | None -> Ctx.run ~seed body
            | Some dir -> (
                let path =
                  Filename.concat dir
                    (Proto.journal_name ~session_seed ~batch_id:id)
                in
                (* A journal for this (session_seed, id) means a previous
                   life of the daemon already paid for (part of) this
                   batch: replay it instead of re-sending. *)
                match
                  if Sys.file_exists path then Journal.load path
                  else Error "absent"
                with
                | Ok j when j.Journal.seed = seed ->
                    Ctx.resume ~seed ~path ~journal:j body
                | Ok _ | Error _ ->
                    Ctx.run_journaled ~seed ~journal:path ~protocol:"serve"
                      body)
          in
          match exec () with
          | run ->
              Proto.Answers
                {
                  id;
                  bits = run.Ctx.bits;
                  rounds = run.Ctx.rounds;
                  replayed_bits = run.Ctx.replayed_bits;
                  answers = Array.to_list run.Ctx.output.Engine.answers;
                }
          | exception Invalid_argument e ->
              Proto.Err (Printf.sprintf "batch %d: %s" id e)
          | exception Failure e -> Proto.Err (Printf.sprintf "batch %d: %s" id e)
          ))

let handle t fd =
  let cleanup () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    locked t.m (fun () ->
        t.active <- t.active - 1;
        t.conns <- List.filter (fun c -> c != fd) t.conns)
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  try
    let session_seed =
      match Proto.decode_request (Transport.read_frame fd) with
      | Proto.Hello { session_seed } -> session_seed
      | _ ->
          respond fd (Proto.Err "protocol error: expected Hello");
          raise Exit
    in
    let session =
      locked t.m (fun () ->
          t.sessions <- t.sessions + 1;
          t.sessions)
    in
    if Metrics.enabled () then Metrics.incr c_sessions;
    respond fd (Proto.Welcome { session });
    let rec loop () =
      match Proto.decode_request (Transport.read_frame fd) with
      | Proto.Quit -> ()
      | Proto.Hello _ ->
          respond fd (Proto.Err "protocol error: duplicate Hello");
          loop ()
      | Proto.Gen { name; n; density; seed; zipf } ->
          respond fd (do_gen t ~name ~n ~density ~seed ~zipf);
          loop ()
      | Proto.Register { name; a; b } ->
          respond fd (do_register t ~name ~a ~b);
          loop ()
      | Proto.Batch { id; pair; specs } ->
          let resp = do_batch t ~session ~session_seed ~id ~pair ~specs in
          let failed = match resp with Proto.Err _ -> true | _ -> false in
          count_batch t ~queries:(List.length specs) ~failed;
          if Metrics.enabled () then begin
            Metrics.incr c_batches;
            Metrics.incr_by c_queries (List.length specs);
            if failed then Metrics.incr c_errors
          end;
          respond fd resp;
          loop ()
    in
    loop ()
  with
  | End_of_file | Exit -> ()
  | Transport.Frame_error _ | Codec.Decode_error _ -> ()
  | Unix.Unix_error _ -> ()

let serve t =
  let rec accept_loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listener ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listener with
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ()
          | fd, _ ->
              locked t.m (fun () ->
                  t.conns <- fd :: t.conns;
                  t.active <- t.active + 1);
              ignore (Thread.create (fun () -> handle t fd) () : Thread.t)));
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (* Drain: give live sessions [grace_s] to finish, then cut their
     sockets so blocked reads/writes fail fast, and wait for the handler
     threads to unwind. *)
  let deadline = Unix.gettimeofday () +. t.cfg.grace_s in
  let rec drain forced =
    let n = locked t.m (fun () -> t.active) in
    if n > 0 then
      if (not forced) && Unix.gettimeofday () > deadline then begin
        locked t.m (fun () ->
            List.iter
              (fun fd ->
                try Unix.shutdown fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error _ -> ())
              t.conns);
        drain true
      end
      else begin
        Thread.delay 0.02;
        drain forced
      end
  in
  drain false;
  Matprod_util.Pool.shutdown ()

let serve_background t = Thread.create (fun () -> serve t) ()
