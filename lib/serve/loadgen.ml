module Prng = Matprod_util.Prng
module Clock = Matprod_obs.Clock
module Reliable = Matprod_comm.Reliable

type report = {
  connections : int;
  batches_per_connection : int;
  queries_per_batch : int;
  queries : int;
  answered : int;
  errors : int;
  in_flight : int;
  elapsed_ns : int;
  qps : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  bits : int;
  replayed_bits : int;
  digest : int;
}

(* Reusable rendezvous: all [parties] threads must arrive before any
   proceeds. Threads that fail mid-phase still call [wait] (see the
   worker loop), so a lost connection can't wedge the whole run. *)
module Barrier = struct
  type t = {
    m : Mutex.t;
    cv : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let create parties =
    { m = Mutex.create (); cv = Condition.create (); parties; count = 0;
      phase = 0 }

  let wait b =
    Mutex.lock b.m;
    let ph = b.phase in
    b.count <- b.count + 1;
    if b.count = b.parties then begin
      b.count <- 0;
      b.phase <- ph + 1;
      Condition.broadcast b.cv
    end
    else while b.phase = ph do Condition.wait b.cv b.m done;
    Mutex.unlock b.m
end

(* One connection's tally, merged after join. *)
type worker = {
  mutable ok : bool;  (* connected, pair ready *)
  mutable sent : int;  (* batches actually written *)
  mutable w_answered : int;
  mutable w_errors : int;
  mutable w_bits : int;
  mutable w_replayed : int;
  mutable w_digest : int;
  mutable t_first : int64;  (* first send *)
  mutable t_last : int64;  (* last answer *)
  mutable latencies : int list;  (* one entry per answered query *)
}

let digest_mask = (1 lsl 30) - 1

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let i = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) i))

let run ?(host = "127.0.0.1") ~port ~connections ~batches ~queries ~n ~density
    ~seed ~specs () =
  if connections < 1 || batches < 1 || queries < 1 then
    invalid_arg "Loadgen.run: counts must be positive";
  if specs = [] then invalid_arg "Loadgen.run: no query specs";
  let base = Array.of_list specs in
  let batch_specs =
    Array.to_list
      (Array.init queries (fun i -> base.(i mod Array.length base)))
  in
  let pair = "w" in
  let submitted = Atomic.make 0 in
  let peak = Atomic.make 0 in
  (* Rendezvous points: [ready] (everyone connected, pair generated),
     [sent] (every batch of every connection is on the wire, nothing read
     yet — the peak-in-flight measurement window), [measured] (reads may
     begin). *)
  let ready = Barrier.create connections in
  let sent = Barrier.create connections in
  let measured = Barrier.create connections in
  let workers =
    Array.init connections (fun _ ->
        {
          ok = false;
          sent = 0;
          w_answered = 0;
          w_errors = 0;
          w_bits = 0;
          w_replayed = 0;
          w_digest = 0;
          t_first = 0L;
          t_last = 0L;
          latencies = [];
        })
  in
  let body ci =
    let w = workers.(ci) in
    let session_seed = Prng.fresh_seed (Prng.derive seed ci 0x10ad) in
    let client =
      try
        let c = Client.connect ~host ~port ~session_seed () in
        match Client.gen c ~name:pair ~n ~density ~seed ~zipf:false with
        | Ok _ ->
            w.ok <- true;
            Some c
        | Error _ ->
            Client.close c;
            None
      with _ -> None
    in
    Barrier.wait ready;
    let send_ns = Array.make batches 0L in
    (match client with
    | Some c -> (
        try
          for bi = 0 to batches - 1 do
            send_ns.(bi) <- Clock.now_ns ();
            if bi = 0 then w.t_first <- send_ns.(bi);
            Client.send c
              (Proto.Batch { id = bi; pair; specs = batch_specs });
            w.sent <- bi + 1;
            ignore (Atomic.fetch_and_add submitted queries : int)
          done
        with _ -> ())
    | None -> ());
    Barrier.wait sent;
    (* Every connection has finished writing and none has read: the
       backlog visible right now is the true concurrent in-flight load. *)
    let rec bump () =
      let cur = Atomic.get peak in
      let cand = Atomic.get submitted in
      if cand > cur && not (Atomic.compare_and_set peak cur cand) then bump ()
    in
    bump ();
    Barrier.wait measured;
    (match client with
    | Some c ->
        (try
           for bi = 0 to w.sent - 1 do
             let raw = Client.response_raw c in
             let now = Clock.now_ns () in
             w.t_last <- now;
             let lat =
               Int64.to_int (Int64.sub now send_ns.(bi)) |> max 0
             in
             w.w_digest <- (w.w_digest + Reliable.crc32 raw) land digest_mask;
             match Proto.decode_response raw with
             | Proto.Answers { bits; replayed_bits; answers; _ } ->
                 let k = List.length answers in
                 w.w_answered <- w.w_answered + k;
                 w.w_bits <- w.w_bits + bits;
                 w.w_replayed <- w.w_replayed + replayed_bits;
                 for _ = 1 to k do w.latencies <- lat :: w.latencies done
             | Proto.Err _ | Proto.Welcome _ | Proto.Ready _ ->
                 w.w_errors <- w.w_errors + queries
           done
         with _ -> ());
        Client.quit c
    | None -> ())
  in
  let threads =
    Array.init connections (fun ci -> Thread.create body ci)
  in
  Array.iter Thread.join threads;
  let answered = Array.fold_left (fun a w -> a + w.w_answered) 0 workers in
  (* Everything submitted-or-owed that never came back as an answer is an
     error: Err batches, batches lost to a dead connection, batches a
     failed worker never sent. *)
  let errors = (connections * batches * queries) - answered in
  let bits = Array.fold_left (fun a w -> a + w.w_bits) 0 workers in
  let replayed_bits =
    Array.fold_left (fun a w -> a + w.w_replayed) 0 workers
  in
  let digest =
    Array.fold_left (fun a w -> (a + w.w_digest) land digest_mask) 0 workers
  in
  let lats =
    Array.of_list
      (Array.fold_left (fun acc w -> List.rev_append w.latencies acc) []
         workers)
  in
  Array.sort compare lats;
  let t_first =
    Array.fold_left
      (fun a w -> if w.ok && w.t_first <> 0L && (a = 0L || w.t_first < a)
                  then w.t_first else a)
      0L workers
  in
  let t_last =
    Array.fold_left
      (fun a w -> if w.t_last > a then w.t_last else a)
      0L workers
  in
  let elapsed_ns =
    if t_last > t_first then Int64.to_int (Int64.sub t_last t_first) else 0
  in
  let qps =
    if elapsed_ns > 0 then
      float_of_int answered /. (float_of_int elapsed_ns /. 1e9)
    else 0.0
  in
  {
    connections;
    batches_per_connection = batches;
    queries_per_batch = queries;
    queries = connections * batches * queries;
    answered;
    errors;
    in_flight = Atomic.get peak;
    elapsed_ns;
    qps;
    p50_ns = percentile lats 0.50;
    p90_ns = percentile lats 0.90;
    p99_ns = percentile lats 0.99;
    bits;
    replayed_bits;
    digest;
  }
