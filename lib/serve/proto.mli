(** Wire protocol of the [matprod serve] daemon.

    One frame ({!Matprod_comm.Transport.frame}) carries one encoded
    {!request} or {!response}; the encodings are built from the existing
    {!Matprod_comm.Codec} grammar, and query statistics travel as the
    engine's textual specs ({!Matprod_engine.Engine.query_of_string}).

    Session contract: a connection opens with [Hello { session_seed }];
    every batch then runs at {!batch_seed}[ ~session_seed ~batch_id] — a
    seed derived from client-supplied values only, so a client that
    reconnects after a daemon crash re-requests the same [(session_seed,
    batch_id)] and the server resumes the batch from its journal with
    zero fresh bits (docs/SERVING.md). *)

module Imat = Matprod_matrix.Imat
module Engine = Matprod_engine.Engine

type request =
  | Hello of { session_seed : int }
      (** must be the first request on a connection *)
  | Gen of { name : string; n : int; density : float; seed : int; zipf : bool }
      (** server-side synthetic workload, the CLI generator's pair *)
  | Register of { name : string; a : Imat.t; b : Imat.t }
      (** upload an explicit pair *)
  | Batch of { id : int; pair : string; specs : string list }
      (** run engine query specs against a registered pair; [id] must be
          fresh per session (it keys the batch seed and the journal) *)
  | Quit

type response =
  | Welcome of { session : int }  (** server-side session number *)
  | Ready of { name : string; rows : int; cols : int }
  | Answers of {
      id : int;
      bits : int;
      rounds : int;
      replayed_bits : int;  (** > 0 when the batch resumed from a journal *)
      answers : Engine.answer list;  (** one per spec, in batch order *)
    }
  | Err of string

val imat : Imat.t Matprod_comm.Codec.t
val answer : Engine.answer Matprod_comm.Codec.t

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
(** Decoders raise {!Matprod_comm.Codec.Decode_error} on malformed input
    (unknown tags included). *)

val batch_seed : session_seed:int -> batch_id:int -> int
(** The seed batch [batch_id] of session [session_seed] runs at —
    deterministic, independent of server state. *)

val journal_name : session_seed:int -> batch_id:int -> string
(** Journal file name (relative to the daemon's journal dir) for one
    batch: stable across reconnects so resume finds it. *)
