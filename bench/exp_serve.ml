(* S1: the serve daemon under concurrent load. An in-process daemon
   (ephemeral loopback port) faces the closed-loop load generator: every
   connection pipelines all its batches before reading anything, so the
   peak number of simultaneously in-flight queries is measured, not
   assumed. The workload is fixed-size regardless of --quick: the gate's
   headline number is "≥ 1000 concurrent in-flight queries on loopback",
   and shrinking it would gut the claim.

   Determinism: session seeds derive from (seed, connection index), so
   answered counts, transcript bits, and the response-payload digest are
   exact fields in BENCH_s1.json — the regression gate compares them
   bit-for-bit while throughput and latency percentiles ride along as
   ignored timing fields. The run executes twice against the same daemon
   to confirm the digest in-process before the gate ever sees it. *)

module Server = Matprod_serve.Server
module Loadgen = Matprod_serve.Loadgen
module Json = Matprod_obs.Json

let connections = 16
let batches = 8
let queries = 16
let n = 24
let density = 0.2
let seed = 42
let specs = [ "norm:eps=0.25"; "top:k=3"; "rows:beta=0.5"; "l0:count=1" ]

let ms ns = float_of_int ns /. 1e6

let s1 ~quick =
  ignore quick;
  Report.section ~id:"S1  serve daemon: concurrent batched query sessions"
    ~claim:
      "the matprod serve daemon sustains >= 1000 concurrent in-flight \
       queries on loopback with every answer accounted for, and its \
       response stream is a deterministic function of the load seed";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let srv = Server.create Server.default_config in
  let th = Server.serve_background srv in
  let stop () =
    Server.stop srv;
    Thread.join th
  in
  Fun.protect ~finally:stop @@ fun () ->
  let run () =
    Loadgen.run ~port:(Server.port srv) ~connections ~batches ~queries ~n
      ~density ~seed ~specs ()
  in
  let r = run () in
  let r2 = run () in
  let cols =
    [ ("run", 6); ("answered", 9); ("in-flight", 9); ("qps", 9);
      ("p50", 8); ("p90", 8); ("p99", 8); ("bits", 10); ("digest", 10) ]
  in
  Report.table_header cols;
  List.iter
    (fun (tag, (x : Loadgen.report)) ->
      Report.row cols
        [ tag;
          Printf.sprintf "%d/%d" x.Loadgen.answered x.Loadgen.queries;
          string_of_int x.Loadgen.in_flight;
          Printf.sprintf "%.0f" x.Loadgen.qps;
          Printf.sprintf "%.1fms" (ms x.Loadgen.p50_ns);
          Printf.sprintf "%.1fms" (ms x.Loadgen.p90_ns);
          Printf.sprintf "%.1fms" (ms x.Loadgen.p99_ns);
          Report.fbits x.Loadgen.bits;
          string_of_int x.Loadgen.digest ])
    [ ("first", r); ("again", r2) ];
  Report.bench_row
    [
      ("connections", Json.Int r.Loadgen.connections);
      ("batches_per_connection", Json.Int r.Loadgen.batches_per_connection);
      ("queries_per_batch", Json.Int r.Loadgen.queries_per_batch);
      ("queries", Json.Int r.Loadgen.queries);
      ("answered", Json.Int r.Loadgen.answered);
      ("errors", Json.Int r.Loadgen.errors);
      ("in_flight", Json.Int r.Loadgen.in_flight);
      ("bits", Json.Int r.Loadgen.bits);
      ("replayed_bits", Json.Int r.Loadgen.replayed_bits);
      ("digest", Json.Int r.Loadgen.digest);
      ("elapsed_ns", Json.Int r.Loadgen.elapsed_ns);
      ("queries_per_sec", Json.Float r.Loadgen.qps);
      ("p50_ns", Json.Int r.Loadgen.p50_ns);
      ("p90_ns", Json.Int r.Loadgen.p90_ns);
      ("p99_ns", Json.Int r.Loadgen.p99_ns);
    ];
  Report.record_verdict
    (r.Loadgen.answered = r.Loadgen.queries && r.Loadgen.errors = 0)
    "every query answered (%d/%d, %d errors)" r.Loadgen.answered
    r.Loadgen.queries r.Loadgen.errors;
  Report.record_verdict
    (r.Loadgen.in_flight >= 1000)
    "peak concurrent in-flight queries %d >= 1000" r.Loadgen.in_flight;
  Report.record_verdict
    (r.Loadgen.in_flight = r.Loadgen.queries)
    "every submitted query was in flight at once (%d of %d)"
    r.Loadgen.in_flight r.Loadgen.queries;
  Report.record_verdict
    (r.Loadgen.digest = r2.Loadgen.digest && r.Loadgen.bits = r2.Loadgen.bits)
    "response stream deterministic: digest %d and %d bits reproduce"
    r.Loadgen.digest r.Loadgen.bits
