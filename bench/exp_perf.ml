(* Experiment P1: plan/apply sketch-kernel throughput.

   The drivers sketch every row of B against ONE shared hash family, so
   the per-key hash work (splitmix64 finalisers, GF(2^31-1) coefficient
   maps, Int64 boxing) can be tabulated once — [plan] — and each row
   applied with table lookups into a reused scratch buffer —
   [sketch_into]. P1 measures rows/second of the seed path vs the planned
   path for every sketch family, plan cost amortised exactly the way the
   drivers amortise it (one plan, many rows), and reports the planned
   fan-out across the domain pool as well.

   Verdicts:
   - planned kernels >= 3x the seed path on every family whose seed path
     re-hashes per row (countsketch, ams, l0_sketch, lp, cohen, srht);
   - stable (p=1) >= 2x: its seed path already amortises entry
     generation through a lazy column cache, so the plan's win is the
     4-key batched accumulate, a smaller (but now gated) margin;
   - srht planned >= hashing planned throughput on dense rows
     (nnz/d >= 0.5), where the O(d log d) FWHT route undercuts the
     O(nnz*m) table walk — the crossover sweep below;
   - pool fan-out: domains=4 >= 1.5x domains=1 where the host has
     multiple cores; on a single-core host the gate degrades to a
     no-inversion floor (chunked dispatch must stay within 0.6x of the
     sequential path). *)

module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Bmat = Matprod_matrix.Bmat
module Workload = Matprod_workload.Workload
module Countsketch = Matprod_sketch.Countsketch
module Ams = Matprod_sketch.Ams
module Stable_sketch = Matprod_sketch.Stable_sketch
module L0_sketch = Matprod_sketch.L0_sketch
module Lp = Matprod_sketch.Lp
module Cohen = Matprod_sketch.Cohen
module Srht = Matprod_sketch.Srht

let dim = 4096

(* ~5% density, the low end of the densities the protocol experiments
   drive (workload generators run 0.05..0.25): per-row hash work then
   carries its real weight against the fixed buffer-reset cost that both
   paths pay identically. *)
let nnz = 192

let mk_rows ~rows ~nnz seed =
  let rng = Prng.create seed in
  Array.init rows (fun r ->
      Array.init nnz (fun i -> (((r * 131) + (i * 37)) mod dim, 1 + Prng.int rng 20)))

(* Best-of-five timing of [f] applied to every row; returns rows/sec.
   Each pass starts from a collected heap so a family's measurement does
   not inherit GC debt from the allocations of the previous one. *)
let rows_per_sec ~rows f =
  let pass () =
    Gc.full_major ();
    let t0 = Matprod_obs.Clock.now_ns () in
    for r = 0 to rows - 1 do
      f r
    done;
    Matprod_obs.Clock.elapsed_ns t0
  in
  let best = ref max_int in
  for _ = 1 to 5 do
    let dt = pass () in
    if dt < !best then best := dt
  done;
  float_of_int rows /. (float_of_int (max 1 !best) /. 1e9)

type family = {
  name : string;
  gate_full : float option; (* speedup floor at full size; None = report-only *)
  gate_quick : float option; (* looser floor for the 300-row smoke tier *)
  seed_path : int -> unit;
  planned_path : int -> unit; (* plan + scratch built once, outside timing *)
}

let families ~rows =
  let vecs = mk_rows ~rows ~nnz 42 in
  let cs = Countsketch.create (Prng.create 1) ~buckets:256 ~reps:5 in
  let cs_plan = Countsketch.plan cs ~dim in
  let cs_dst = Countsketch.empty cs in
  let ams = Ams.create (Prng.create 2) ~eps:0.2 ~groups:5 in
  let ams_plan = Ams.plan ams ~dim in
  let ams_dst = Ams.empty ams in
  let l0 = L0_sketch.create (Prng.create 3) ~eps:0.2 ~groups:3 ~dim in
  let l0_plan = L0_sketch.plan l0 ~dim in
  let l0_dst = L0_sketch.empty l0 in
  let lp = Lp.create (Prng.create 4) ~p:0.0 ~eps:0.2 ~groups:3 ~dim in
  let lp_plan = Lp.plan lp ~dim in
  let lp_dst = Lp.empty lp in
  let stable = Stable_sketch.create (Prng.create 5) ~p:1.0 ~eps:0.2 ~groups:5 in
  let stable_plan = Stable_sketch.plan stable ~dim in
  let stable_dst = Stable_sketch.empty stable in
  let srht = Srht.create (Prng.create 9) ~eps:0.2 ~groups:5 ~dim in
  let srht_plan = Srht.plan srht ~dim in
  let srht_dst = Srht.empty srht in
  [
    {
      name = "countsketch";
      gate_full = Some 3.0;
      gate_quick = Some 2.0;
      seed_path = (fun r -> ignore (Countsketch.sketch cs vecs.(r)));
      planned_path = (fun r -> Countsketch.sketch_into cs cs_plan ~dst:cs_dst vecs.(r));
    };
    {
      name = "ams";
      gate_full = Some 3.0;
      gate_quick = Some 2.0;
      seed_path = (fun r -> ignore (Ams.sketch ams vecs.(r)));
      planned_path = (fun r -> Ams.sketch_into ams ams_plan ~dst:ams_dst vecs.(r));
    };
    {
      name = "l0_sketch";
      gate_full = Some 3.0;
      gate_quick = Some 2.0;
      seed_path = (fun r -> ignore (L0_sketch.sketch l0 vecs.(r)));
      planned_path = (fun r -> L0_sketch.sketch_into l0 l0_plan ~dst:l0_dst vecs.(r));
    };
    {
      name = "lp (p=0)";
      gate_full = Some 3.0;
      gate_quick = Some 2.0;
      seed_path = (fun r -> ignore (Lp.sketch lp vecs.(r)));
      planned_path = (fun r -> Lp.sketch_into lp lp_plan ~dst:lp_dst vecs.(r));
    };
    (* The stable seed path already amortises entry generation through a
       lazy column cache, so its planned win is the 4-key batched
       accumulate in Kernel.apply — gated at 2x, not 3x. *)
    {
      name = "stable (p=1)";
      gate_full = Some 2.0;
      gate_quick = Some 1.5;
      seed_path = (fun r -> ignore (Stable_sketch.sketch stable vecs.(r)));
      planned_path =
        (fun r -> Stable_sketch.sketch_into stable stable_plan ~dst:stable_dst vecs.(r));
    };
    (* srht's seed path materialises D and the sampled Hadamard rows per
       key (Prng.derive + popcount per entry); the plan tabulates both
       and routes dense rows through the FWHT. *)
    {
      name = "srht";
      gate_full = Some 3.0;
      gate_quick = Some 2.0;
      seed_path = (fun r -> ignore (Srht.sketch srht vecs.(r)));
      planned_path = (fun r -> Srht.sketch_into srht srht_plan ~dst:srht_dst vecs.(r));
    };
  ]

(* Cohen's shape differs (column minima, not per-row buffers), so it gets
   its own batch measurement: columns/second over one support structure. *)
let cohen_cols_per_sec ~cols ~planned =
  let rng = Prng.create 6 in
  let t = Cohen.create rng ~reps:64 ~rows:1024 in
  let a = Workload.uniform_bool rng ~rows:1024 ~cols ~density:0.05 in
  let at = Bmat.transpose a in
  let supp_of_col k = Bmat.row at k in
  let plan = Cohen.plan t in
  let pass () =
    Gc.full_major ();
    let t0 = Matprod_obs.Clock.now_ns () in
    (if planned then ignore (Cohen.column_mins_with_plan t plan ~supp_of_col ~cols)
     else ignore (Cohen.column_mins t ~supp_of_col ~cols));
    Matprod_obs.Clock.elapsed_ns t0
  in
  let best = ref max_int in
  for _ = 1 to 5 do
    let dt = pass () in
    if dt < !best then best := dt
  done;
  float_of_int cols /. (float_of_int (max 1 !best) /. 1e9)

let frate r =
  if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r

(* Hashing vs FWHT route crossover: ams planned (O(nnz*m) table walk)
   against srht planned (densify + O(d log d) FWHT + gather) over a
   density sweep at matched sketch width. The sparsest point rides srht's
   tabulated sparse route (parity expected); from nnz/d = 0.5 the FWHT
   must win outright. *)
let crossover ~quick =
  let rows = if quick then 80 else 300 in
  let ams = Ams.create (Prng.create 7) ~eps:0.4 ~groups:5 in
  let ams_plan = Ams.plan ams ~dim in
  let ams_dst = Ams.empty ams in
  let srht = Srht.create (Prng.create 8) ~eps:0.4 ~groups:5 ~dim in
  let srht_plan = Srht.plan srht ~dim in
  let srht_dst = Srht.empty srht in
  let tbl =
    [ ("nnz/d", 8); ("nnz", 6); ("hashing rows/s", 14); ("srht rows/s", 12);
      ("srht/hashing", 12); ("gated", 6) ]
  in
  Printf.printf
    "\ncrossover: ams planned vs srht planned, dim %d, matched width m=%d\n"
    dim (Ams.size ams);
  Report.table_header tbl;
  let ok = ref true in
  List.iter
    (fun permille ->
      let frac = float_of_int permille /. 1000.0 in
      let row_nnz = max 1 (int_of_float (frac *. float_of_int dim)) in
      let vecs = mk_rows ~rows ~nnz:row_nnz (100 + permille) in
      let hashing_rate =
        rows_per_sec ~rows (fun r -> Ams.sketch_into ams ams_plan ~dst:ams_dst vecs.(r))
      in
      let srht_rate =
        rows_per_sec ~rows (fun r ->
            Srht.sketch_into srht srht_plan ~dst:srht_dst vecs.(r))
      in
      let ratio = srht_rate /. hashing_rate in
      let gated = permille >= 500 in
      if gated && ratio < 1.0 then ok := false;
      Report.row tbl
        [ Printf.sprintf "%.2f" frac; string_of_int row_nnz;
          frate hashing_rate; frate srht_rate; Printf.sprintf "%.2fx" ratio;
          (if gated then "yes" else "no") ];
      Report.bench_row
        [
          ("family", Matprod_obs.Json.String "hashing vs fwht crossover");
          ("nnz_permille", Matprod_obs.Json.Int permille);
          ("nnz", Matprod_obs.Json.Int row_nnz);
          ("dim", Matprod_obs.Json.Int dim);
          ("rows", Matprod_obs.Json.Int rows);
          ("hashing_rows_per_sec", Matprod_obs.Json.Float hashing_rate);
          ("srht_rows_per_sec", Matprod_obs.Json.Float srht_rate);
          ("srht_vs_hashing_rate", Matprod_obs.Json.Float ratio);
          ("gated", Matprod_obs.Json.Bool gated);
        ])
    [ 20; 100; 500; 1000 ];
  Report.record_verdict !ok
    "srht planned >= hashing planned throughput on dense rows (nnz/d >= 0.5)"

(* Domain fan-out of the planned kernel. The pool is warmed (domains
   spawned, plan tables faulted in) before the timed region, and each
   domain count gets the same best-of-five treatment as the kernels —
   spawn cost is a per-process constant the drivers pay once, not a
   per-batch cost. The gate is machine-aware: a single-core host cannot
   show a wall-clock win, so there the check degrades to a no-inversion
   floor on the chunked dispatch overhead. *)
let fanout ~rows =
  let vecs = mk_rows ~rows ~nnz 42 in
  let cs = Countsketch.create (Prng.create 1) ~buckets:256 ~reps:5 in
  let plan = Countsketch.plan cs ~dim in
  let job () = ignore (Pool.init rows (fun r -> Countsketch.sketch_with_plan cs plan vecs.(r))) in
  let rate_at d =
    Pool.set_size d;
    job ();
    (* warm: spawn + fault-in, untimed *)
    let best = ref max_int in
    for _ = 1 to 5 do
      Gc.full_major ();
      let t0 = Matprod_obs.Clock.now_ns () in
      job ();
      let dt = Matprod_obs.Clock.elapsed_ns t0 in
      if dt < !best then best := dt
    done;
    float_of_int rows /. (float_of_int (max 1 !best) /. 1e9)
  in
  let rates =
    List.map
      (fun d ->
        let rate = rate_at d in
        Printf.printf "pool fan-out (countsketch planned), domains=%d: %s rows/s\n"
          d (frate rate);
        Report.bench_row
          [
            ("family", Matprod_obs.Json.String "countsketch pool fan-out");
            ("domains", Matprod_obs.Json.Int d);
            ("rows", Matprod_obs.Json.Int rows);
            ("planned_rows_per_sec", Matprod_obs.Json.Float rate);
            ("gated", Matprod_obs.Json.Bool true);
          ];
        (d, rate))
      [ 1; 4 ]
  in
  Pool.set_size 1;
  let r1 = List.assoc 1 rates and r4 = List.assoc 4 rates in
  let ratio = r4 /. r1 in
  Report.bench_row
    [
      ("family", Matprod_obs.Json.String "countsketch pool fan-out");
      ("fanout_speedup", Matprod_obs.Json.Float ratio);
      ("gated", Matprod_obs.Json.Bool true);
    ];
  if Domain.recommended_domain_count () > 1 then
    Report.record_verdict (ratio >= 1.5)
      "pool fan-out: domains=4 >= 1.5x domains=1 (measured %.2fx)" ratio
  else
    Report.record_verdict (ratio >= 0.6)
      "pool fan-out on a single-core host: domains=4 stays within chunk \
       overhead of domains=1 (measured %.2fx, floor 0.6x; the 1.5x gate \
       applies on multi-core hosts)"
      ratio

let p1 ~quick =
  Report.section ~id:"P1  plan/apply kernel throughput (rows/sec)"
    ~claim:
      "tabulating the hash family once per driver (plan) and applying it \
       with table lookups into a reused scratch (sketch_into) lifts \
       sketch-build throughput >= 3x over the per-row rehashing seed path \
       (>= 2x for stable, whose seed path already caches columns), and the \
       srht FWHT route beats the hashing table walk on dense rows";
  let rows = if quick then 300 else 1500 in
  let cols = if quick then 256 else 1024 in
  Printf.printf
    "workload: %d rows, %d-sparse over dim %d, one shared hash family; plan \
     built once outside the timed region (as the drivers amortise it)\n\n"
    rows nnz dim;
  let tbl =
    [ ("family", 14); ("seed rows/s", 12); ("planned rows/s", 14);
      ("speedup", 8); ("gate", 6) ]
  in
  Report.table_header tbl;
  let all_gated_ok = ref true in
  (* Quick mode is a smoke tier: 300-row passes are too short for stable
     ratios on a timeshared box, so each family's quick gate is looser;
     the headline claims are judged (and the committed sidecar produced)
     at full size. *)
  let record name ~gate ~seed_rate ~planned_rate =
    let speedup = planned_rate /. seed_rate in
    (match gate with
    | Some g -> if speedup < g then all_gated_ok := false
    | None -> ());
    Report.row tbl
      [ name; frate seed_rate; frate planned_rate;
        Printf.sprintf "%.1fx" speedup;
        (match gate with Some g -> Printf.sprintf "%.1fx" g | None -> "-") ];
    Report.bench_row
      [
        ("family", Matprod_obs.Json.String name);
        ("rows", Matprod_obs.Json.Int rows);
        ("nnz", Matprod_obs.Json.Int nnz);
        ("dim", Matprod_obs.Json.Int dim);
        ("seed_rows_per_sec", Matprod_obs.Json.Float seed_rate);
        ("planned_rows_per_sec", Matprod_obs.Json.Float planned_rate);
        ("speedup", Matprod_obs.Json.Float speedup);
        ("gate_rate", Matprod_obs.Json.Float (Option.value gate ~default:0.0));
        ("gated", Matprod_obs.Json.Bool (gate <> None));
      ]
  in
  List.iter
    (fun fam ->
      let seed_rate = rows_per_sec ~rows fam.seed_path in
      let planned_rate = rows_per_sec ~rows fam.planned_path in
      let gate = if quick then fam.gate_quick else fam.gate_full in
      record fam.name ~gate ~seed_rate ~planned_rate)
    (families ~rows);
  let cohen_seed = cohen_cols_per_sec ~cols ~planned:false in
  let cohen_planned = cohen_cols_per_sec ~cols ~planned:true in
  record "cohen (cols/s)"
    ~gate:(Some (if quick then 2.0 else 3.0))
    ~seed_rate:cohen_seed ~planned_rate:cohen_planned;
  Report.record_verdict !all_gated_ok
    "planned kernels clear their per-family speedup gates (3x rehashing \
     families, 2x stable)";
  crossover ~quick;
  fanout ~rows
