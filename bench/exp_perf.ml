(* Experiment P1: plan/apply sketch-kernel throughput.

   The drivers sketch every row of B against ONE shared hash family, so
   the per-key hash work (splitmix64 finalisers, GF(2^31-1) coefficient
   maps, Int64 boxing) can be tabulated once — [plan] — and each row
   applied with table lookups into a reused scratch buffer —
   [sketch_into]. P1 measures rows/second of the seed path vs the planned
   path for every sketch family, plan cost amortised exactly the way the
   drivers amortise it (one plan, many rows), and reports the planned
   fan-out across the domain pool as well.

   Verdict: planned kernels at least 3x the seed path's throughput on
   every family whose seed path re-hashes per row (countsketch, ams,
   l0_sketch, lp, cohen). Stable is reported but not gated: its seed path
   already amortises entry generation through a lazy column cache, so the
   plan mostly buys it domain-safety, not raw speed. *)

module Prng = Matprod_util.Prng
module Pool = Matprod_util.Pool
module Bmat = Matprod_matrix.Bmat
module Workload = Matprod_workload.Workload
module Countsketch = Matprod_sketch.Countsketch
module Ams = Matprod_sketch.Ams
module Stable_sketch = Matprod_sketch.Stable_sketch
module L0_sketch = Matprod_sketch.L0_sketch
module Lp = Matprod_sketch.Lp
module Cohen = Matprod_sketch.Cohen

let dim = 4096

(* ~5% density, the low end of the densities the protocol experiments
   drive (workload generators run 0.05..0.25): per-row hash work then
   carries its real weight against the fixed buffer-reset cost that both
   paths pay identically. *)
let nnz = 192

let mk_rows ~rows seed =
  let rng = Prng.create seed in
  Array.init rows (fun r ->
      Array.init nnz (fun i -> (((r * 131) + (i * 37)) mod dim, 1 + Prng.int rng 20)))

(* Best-of-five timing of [f] applied to every row; returns rows/sec.
   Each pass starts from a collected heap so a family's measurement does
   not inherit GC debt from the allocations of the previous one. *)
let rows_per_sec ~rows f =
  let pass () =
    Gc.full_major ();
    let t0 = Matprod_obs.Clock.now_ns () in
    for r = 0 to rows - 1 do
      f r
    done;
    Matprod_obs.Clock.elapsed_ns t0
  in
  let best = ref max_int in
  for _ = 1 to 5 do
    let dt = pass () in
    if dt < !best then best := dt
  done;
  float_of_int rows /. (float_of_int (max 1 !best) /. 1e9)

type family = {
  name : string;
  gated : bool;
  seed_path : int -> unit;
  planned_path : int -> unit; (* plan + scratch built once, outside timing *)
}

let families ~rows =
  let vecs = mk_rows ~rows 42 in
  let cs = Countsketch.create (Prng.create 1) ~buckets:256 ~reps:5 in
  let cs_plan = Countsketch.plan cs ~dim in
  let cs_dst = Countsketch.empty cs in
  let ams = Ams.create (Prng.create 2) ~eps:0.2 ~groups:5 in
  let ams_plan = Ams.plan ams ~dim in
  let ams_dst = Ams.empty ams in
  let l0 = L0_sketch.create (Prng.create 3) ~eps:0.2 ~groups:3 ~dim in
  let l0_plan = L0_sketch.plan l0 ~dim in
  let l0_dst = L0_sketch.empty l0 in
  let lp = Lp.create (Prng.create 4) ~p:0.0 ~eps:0.2 ~groups:3 ~dim in
  let lp_plan = Lp.plan lp ~dim in
  let lp_dst = Lp.empty lp in
  let stable = Stable_sketch.create (Prng.create 5) ~p:1.0 ~eps:0.2 ~groups:5 in
  let stable_plan = Stable_sketch.plan stable ~dim in
  let stable_dst = Stable_sketch.empty stable in
  [
    {
      name = "countsketch";
      gated = true;
      seed_path = (fun r -> ignore (Countsketch.sketch cs vecs.(r)));
      planned_path = (fun r -> Countsketch.sketch_into cs cs_plan ~dst:cs_dst vecs.(r));
    };
    {
      name = "ams";
      gated = true;
      seed_path = (fun r -> ignore (Ams.sketch ams vecs.(r)));
      planned_path = (fun r -> Ams.sketch_into ams ams_plan ~dst:ams_dst vecs.(r));
    };
    {
      name = "l0_sketch";
      gated = true;
      seed_path = (fun r -> ignore (L0_sketch.sketch l0 vecs.(r)));
      planned_path = (fun r -> L0_sketch.sketch_into l0 l0_plan ~dst:l0_dst vecs.(r));
    };
    {
      name = "lp (p=0)";
      gated = true;
      seed_path = (fun r -> ignore (Lp.sketch lp vecs.(r)));
      planned_path = (fun r -> Lp.sketch_into lp lp_plan ~dst:lp_dst vecs.(r));
    };
    {
      name = "stable (p=1)";
      gated = false;
      seed_path = (fun r -> ignore (Stable_sketch.sketch stable vecs.(r)));
      planned_path =
        (fun r -> Stable_sketch.sketch_into stable stable_plan ~dst:stable_dst vecs.(r));
    };
  ]

(* Cohen's shape differs (column minima, not per-row buffers), so it gets
   its own batch measurement: columns/second over one support structure. *)
let cohen_cols_per_sec ~cols ~planned =
  let rng = Prng.create 6 in
  let t = Cohen.create rng ~reps:64 ~rows:1024 in
  let a = Workload.uniform_bool rng ~rows:1024 ~cols ~density:0.05 in
  let at = Bmat.transpose a in
  let supp_of_col k = Bmat.row at k in
  let plan = Cohen.plan t in
  let pass () =
    Gc.full_major ();
    let t0 = Matprod_obs.Clock.now_ns () in
    (if planned then ignore (Cohen.column_mins_with_plan t plan ~supp_of_col ~cols)
     else ignore (Cohen.column_mins t ~supp_of_col ~cols));
    Matprod_obs.Clock.elapsed_ns t0
  in
  let best = ref max_int in
  for _ = 1 to 5 do
    let dt = pass () in
    if dt < !best then best := dt
  done;
  float_of_int cols /. (float_of_int (max 1 !best) /. 1e9)

let frate r =
  if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r

let p1 ~quick =
  Report.section ~id:"P1  plan/apply kernel throughput (rows/sec)"
    ~claim:
      "tabulating the hash family once per driver (plan) and applying it \
       with table lookups into a reused scratch (sketch_into) lifts \
       sketch-build throughput >= 3x over the per-row rehashing seed path";
  let rows = if quick then 300 else 1500 in
  let cols = if quick then 256 else 1024 in
  Printf.printf
    "workload: %d rows, %d-sparse over dim %d, one shared hash family; plan \
     built once outside the timed region (as the drivers amortise it)\n\n"
    rows nnz dim;
  let tbl =
    [ ("family", 14); ("seed rows/s", 12); ("planned rows/s", 14);
      ("speedup", 8); ("gated", 6) ]
  in
  Report.table_header tbl;
  let worst_gated = ref infinity in
  let record name ~gated ~seed_rate ~planned_rate =
    let speedup = planned_rate /. seed_rate in
    if gated && speedup < !worst_gated then worst_gated := speedup;
    Report.row tbl
      [ name; frate seed_rate; frate planned_rate;
        Printf.sprintf "%.1fx" speedup; (if gated then "yes" else "no") ];
    Report.bench_row
      [
        ("family", Matprod_obs.Json.String name);
        ("rows", Matprod_obs.Json.Int rows);
        ("nnz", Matprod_obs.Json.Int nnz);
        ("dim", Matprod_obs.Json.Int dim);
        ("seed_rows_per_sec", Matprod_obs.Json.Float seed_rate);
        ("planned_rows_per_sec", Matprod_obs.Json.Float planned_rate);
        ("speedup", Matprod_obs.Json.Float speedup);
        ("gated", Matprod_obs.Json.Bool gated);
      ]
  in
  List.iter
    (fun fam ->
      let seed_rate = rows_per_sec ~rows fam.seed_path in
      let planned_rate = rows_per_sec ~rows fam.planned_path in
      record fam.name ~gated:fam.gated ~seed_rate ~planned_rate)
    (families ~rows);
  let cohen_seed = cohen_cols_per_sec ~cols ~planned:false in
  let cohen_planned = cohen_cols_per_sec ~cols ~planned:true in
  record "cohen (cols/s)" ~gated:true ~seed_rate:cohen_seed
    ~planned_rate:cohen_planned;
  (* Domain fan-out of the planned kernel: correctness is covered by the
     equivalence suite; here we just report that the pool path carries the
     same throughput shape (this container timeshares one core, so no
     wall-clock win is expected or gated). *)
  let vecs = mk_rows ~rows 42 in
  let cs = Countsketch.create (Prng.create 1) ~buckets:256 ~reps:5 in
  let plan = Countsketch.plan cs ~dim in
  List.iter
    (fun d ->
      Pool.set_size d;
      let t0 = Matprod_obs.Clock.now_ns () in
      ignore (Pool.init rows (fun r -> Countsketch.sketch_with_plan cs plan vecs.(r)));
      let dt = float_of_int (Matprod_obs.Clock.elapsed_ns t0) in
      let rate = float_of_int rows /. (dt /. 1e9) in
      Printf.printf "pool fan-out (countsketch planned), domains=%d: %s rows/s\n"
        d (frate rate);
      Report.bench_row
        [
          ("family", Matprod_obs.Json.String "countsketch pool fan-out");
          ("domains", Matprod_obs.Json.Int d);
          ("rows", Matprod_obs.Json.Int rows);
          ("planned_rows_per_sec", Matprod_obs.Json.Float rate);
          ("gated", Matprod_obs.Json.Bool false);
        ])
    [ 1; 4 ];
  Pool.set_size 1;
  (* Quick mode is a smoke tier: 300-row passes are too short for stable
     ratios on a timeshared box, so it gates at 2x; the >= 3x claim is
     judged (and the committed sidecar produced) at full size. *)
  let gate = if quick then 2.0 else 3.0 in
  Report.record_verdict (!worst_gated >= gate)
    "planned kernels >= %.0fx seed throughput on every gated family (worst %.1fx)"
    gate !worst_gated
