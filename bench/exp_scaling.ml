(* SC1: the scaling study. Every protocol's communication is measured over
   an n-sweep and the log-log slope fitted — the paper's asymptotic
   exponents as measured numbers. Log factors and additive terms bias the
   small-n fits, so the verdicts check orderings and generous windows
   rather than exact exponents. *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload

let density = 0.05

let bits_of ~n f =
  let rng = Prng.create (9000 + n) in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  (Ctx.run ~seed:1 (fun ctx -> f ctx a b)).Ctx.bits

let protocols =
  [
    ( "Remark 2 (exact l1)",
      1.0,
      fun ctx a b -> ignore (Matprod_core.L1_exact.run_bool ctx ~a ~b) );
    ( "Algorithm 1 (p=0, eps=.25)",
      1.0,
      fun ctx a b ->
        ignore
          (Matprod_core.Lp_protocol.run ctx
             (Matprod_core.Lp_protocol.default_params ~eps:0.25 ())
             ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)) );
    ( "Algorithm 2 (eps=.25)",
      1.5,
      fun ctx a b ->
        ignore
          (Matprod_core.Linf_binary.run ctx
             (Matprod_core.Linf_binary.default_params ~eps:0.25)
             ~a ~b) );
    ( "Thm 4.8 (kappa=4)",
      2.0,
      fun ctx a b ->
        ignore
          (Matprod_core.Linf_general.run ctx
             { Matprod_core.Linf_general.kappa = 4.0 }
             ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)) );
    ( "trivial (ship A bitmap)",
      2.0,
      fun ctx a b ->
        ignore
          (Matprod_core.Trivial.run_bool ctx ~a ~b (fun c -> Product.nnz c)) );
  ]

let sc1 ~quick =
  Report.section ~id:"SC1 scaling study: fitted communication exponents"
    ~claim:
      "measured log-log slopes of bits vs n reflect the paper's exponents: \
       1 (Remark 2, Algorithm 1), 1.5 (Algorithm 2), 2 (Thm 4.8 at fixed \
       kappa, trivial)";
  let ns = if quick then [ 128; 256; 512 ] else [ 128; 181; 256; 362; 512 ] in
  let cols =
    [ ("protocol", 28); ("theory", 7); ("fitted", 7) ]
    @ List.map (fun n -> (Printf.sprintf "n=%d" n, 9)) ns
  in
  Report.table_header cols;
  let slopes = Hashtbl.create 8 in
  List.iter
    (fun (name, theory, f) ->
      let pts = List.map (fun n -> (n, bits_of ~n f)) ns in
      let slope =
        Report.fit_loglog_slope
          (List.map (fun (n, b) -> (float_of_int n, float_of_int b)) pts)
      in
      Hashtbl.replace slopes name slope;
      Report.row cols
        ([ name; Report.f2 theory; Report.f2 slope ]
        @ List.map (fun (_, b) -> Report.fbits b) pts))
    protocols;
  let slope name = Hashtbl.find slopes name in
  Report.record_verdict
    (Float.abs (slope "Remark 2 (exact l1)" -. 1.0) < 0.15)
    "Remark 2 fits ~n^1 (got n^%.2f)" (slope "Remark 2 (exact l1)");
  Report.record_verdict
    (slope "Algorithm 1 (p=0, eps=.25)" < 1.4)
    "Algorithm 1 fits ~n^1 modulo log factors (got n^%.2f)"
    (slope "Algorithm 1 (p=0, eps=.25)");
  Report.record_verdict
    (Float.abs (slope "trivial (ship A bitmap)" -. 2.0) < 0.1)
    "trivial protocol fits n^2 exactly (got n^%.2f)"
    (slope "trivial (ship A bitmap)");
  Report.record_verdict
    (slope "Algorithm 2 (eps=.25)" < slope "trivial (ship A bitmap)" -. 0.2)
    "Algorithm 2's exponent (n^%.2f) sits clearly below the trivial n^2"
    (slope "Algorithm 2 (eps=.25)");
  Report.record_verdict
    (slope "Thm 4.8 (kappa=4)" > 1.7)
    "Thm 4.8 at fixed kappa fits ~n^2 (got n^%.2f)" (slope "Thm 4.8 (kappa=4)")

(* SC2: the eps sweep. Fitted slopes of bits against 1/eps: 1 for
   Algorithm 1, 2 for the one-round and Cohen baselines — the paper's
   headline 1/eps-vs-1/eps^2 separation as exponents. *)
let sc2 ~quick =
  Report.section ~id:"SC2 scaling study: fitted accuracy exponents (bits vs 1/eps)"
    ~claim:
      "Algorithm 1 pays ~(1/eps)^1 while the 1-round [16] and Cohen [12] \
       baselines pay ~(1/eps)^2 (Theorem 3.1 vs the Omega(n/eps^2) 1-round \
       lower bound)";
  let n = 192 in
  let rng = Prng.create 9100 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.06 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.06 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let eps_list = if quick then [ 0.5; 0.25; 0.125 ] else [ 0.5; 0.35; 0.25; 0.18; 0.125 ] in
  let runs =
    [
      ( "Algorithm 1 (2-round)",
        1.0,
        fun eps ctx ->
          ignore
            (Matprod_core.Lp_protocol.run ctx
               (Matprod_core.Lp_protocol.default_params ~eps ())
               ~a:ai ~b:bi) );
      ( "1-round sketch [16]",
        2.0,
        fun eps ctx ->
          ignore
            (Matprod_core.Lp_oneround.run ctx
               (Matprod_core.Lp_oneround.default_params ~eps ())
               ~a:ai ~b:bi) );
      ( "Cohen adaptation [12]",
        2.0,
        fun eps ctx ->
          ignore
            (Matprod_core.Cohen_baseline.run ctx
               (Matprod_core.Cohen_baseline.params_for_eps ~eps)
               ~a ~b) );
    ]
  in
  let cols =
    [ ("protocol", 24); ("theory", 7); ("fitted", 7) ]
    @ List.map (fun e -> (Printf.sprintf "e=%.3f" e, 9)) eps_list
  in
  Report.table_header cols;
  let slopes = Hashtbl.create 4 in
  List.iter
    (fun (name, theory, f) ->
      let pts =
        List.map
          (fun eps -> (1.0 /. eps, (Ctx.run ~seed:1 (f eps)).Ctx.bits))
          eps_list
      in
      let slope =
        Report.fit_loglog_slope
          (List.map (fun (x, bits) -> (x, float_of_int bits)) pts)
      in
      Hashtbl.replace slopes name slope;
      Report.row cols
        ([ name; Report.f2 theory; Report.f2 slope ]
        @ List.map (fun (_, bits) -> Report.fbits bits) pts))
    runs;
  let slope name = Hashtbl.find slopes name in
  Report.record_verdict
    (slope "Algorithm 1 (2-round)" < 1.5)
    "Algorithm 1's eps exponent (%.2f) is ~1" (slope "Algorithm 1 (2-round)");
  Report.record_verdict
    (slope "1-round sketch [16]" > 1.6)
    "the 1-round baseline's eps exponent (%.2f) is ~2"
    (slope "1-round sketch [16]");
  Report.record_verdict
    (slope "Algorithm 1 (2-round)" < slope "1-round sketch [16]" -. 0.4
    && slope "Algorithm 1 (2-round)" < slope "Cohen adaptation [12]" -. 0.4)
    "Algorithm 1 separates from both 1/eps^2 baselines"

let all ~quick =
  sc1 ~quick;
  sc2 ~quick
