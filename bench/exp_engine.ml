(* E1 companion: the batched query engine. Same statistic family as E1's
   Algorithm 1 runs, but asked through Matprod_engine as one batch — the
   rows land in BENCH_e1.json next to the standalone protocol rows. *)

module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Engine = Matprod_engine.Engine

let e1 ~quick =
  Report.section ~id:"E1  batched query engine (round-1 reuse + plan cache)"
    ~claim:
      "a batch of k >= 3 same-family queries spends strictly fewer transcript \
       bits than the k standalone runs: the round-1 sketch exchange ships once";
  let n = if quick then 128 else 256 in
  let density = 0.05 in
  let rng = Prng.create 42 in
  let a =
    Imat.of_bmat (Workload.uniform_bool rng ~rows:n ~cols:n ~density)
  in
  let b =
    Imat.of_bmat (Workload.uniform_bool rng ~rows:n ~cols:n ~density)
  in
  (* Three queries over one lp family: the norm pays its sampling round,
     the row queries answer from the shared round-1 sketches. *)
  let queries =
    [
      Engine.Norm_pow { p = 0.0; eps = 0.25 };
      Engine.Row_norms { p = 0.0; beta = 0.5 };
      Engine.Top_rows { p = 0.0; beta = 0.5; k = 5 };
    ]
  in
  let engine = Engine.create () in
  let batched =
    Ctx.run ~seed:1 (fun ctx -> Engine.run engine ctx ~a ~b queries)
  in
  let rep = batched.Ctx.output in
  let standalone =
    List.fold_left
      (fun acc q ->
        let solo = Engine.create ~plan_cache_capacity:0 () in
        acc
        + (Ctx.run ~seed:1 (fun ctx -> Engine.run solo ctx ~a ~b [ q ])).Ctx.bits)
      0 queries
  in
  let saved = standalone - batched.Ctx.bits in
  let cols =
    [ ("mode", 12); ("queries", 8); ("groups", 7); ("bits", 10); ("rounds", 7) ]
  in
  Report.table_header cols;
  Report.row cols
    [
      "batched";
      string_of_int (List.length queries);
      string_of_int (List.length rep.Engine.groups);
      Report.fbits batched.Ctx.bits;
      string_of_int batched.Ctx.rounds;
    ];
  Report.row cols
    [
      "standalone";
      string_of_int (List.length queries);
      string_of_int (List.length queries);
      Report.fbits standalone;
      "-";
    ];
  List.iter
    (fun (mode, bits, rounds, groups) ->
      Report.bench_row
        [
          ("n", Matprod_obs.Json.Int n);
          ("protocol", Matprod_obs.Json.String ("engine " ^ mode));
          ("queries", Matprod_obs.Json.Int (List.length queries));
          ("groups", Matprod_obs.Json.Int groups);
          ("bits", Matprod_obs.Json.Int bits);
          ("rounds", Matprod_obs.Json.Int rounds);
          ("saved_bits", Matprod_obs.Json.Int saved);
        ])
    [
      ("batch", batched.Ctx.bits, batched.Ctx.rounds, List.length rep.Engine.groups);
      ("standalone", standalone, 0, List.length queries);
    ];
  Report.note "batching saves %s of %s standalone bits (%.1f%%)"
    (Report.fbits saved) (Report.fbits standalone)
    (100.0 *. float_of_int saved /. float_of_int standalone);
  Report.record_verdict
    (batched.Ctx.bits < standalone)
    "batch of %d same-family queries strictly cheaper than standalone"
    (List.length queries);
  (* The plan cache is a wall-clock lever only: a warm second batch hits
     the cached sketch plan and leaves the transcript untouched. *)
  let warm = Ctx.run ~seed:1 (fun ctx -> Engine.run engine ctx ~a ~b queries) in
  let hits, misses = Engine.plan_cache_stats engine in
  Report.note "plan cache across two batches: %d hits, %d misses" hits misses;
  Report.bench_row
    [
      ("n", Matprod_obs.Json.Int n);
      ("protocol", Matprod_obs.Json.String "engine warm");
      ("bits", Matprod_obs.Json.Int warm.Ctx.bits);
      ("plan_hits", Matprod_obs.Json.Int hits);
      ("plan_misses", Matprod_obs.Json.Int misses);
    ];
  Report.record_verdict
    (warm.Ctx.output.Engine.plan_hits = 1 && warm.Ctx.bits = batched.Ctx.bits)
    "warm plan-cache hit leaves the transcript bit-identical"
