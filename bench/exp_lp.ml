(* Experiments E1–E5: the ℓp / sampling protocols of Section 3. *)

module Prng = Matprod_util.Prng
module Stats = Matprod_util.Stats
module Bmat = Matprod_matrix.Bmat
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Lp_protocol = Matprod_core.Lp_protocol
module Lp_oneround = Matprod_core.Lp_oneround
module L1_exact = Matprod_core.L1_exact
module L1_sampling = Matprod_core.L1_sampling
module L0_sampling = Matprod_core.L0_sampling
module Cohen_baseline = Matprod_core.Cohen_baseline

let seeds ~quick = if quick then [ 1 ] else [ 1; 2; 3 ]

let med = Report.median_of

(* Run a protocol over seeds; report medians of rel-err, bits and
   wall-clock, plus the (seed-independent) round count. *)
type proto_result = { err : float; bits : int; rounds : int; elapsed_ns : int }

let run_protocol ~seeds ~actual f =
  let errs, bits, rounds, times =
    List.fold_left
      (fun (es, bs, _, ts) seed ->
        let t0 = Matprod_obs.Clock.now_ns () in
        let r = Ctx.run ~seed f in
        let dt = float_of_int (Matprod_obs.Clock.elapsed_ns t0) in
        ( Stats.relative_error ~actual ~estimate:r.Ctx.output :: es,
          float_of_int r.Ctx.bits :: bs,
          r.Ctx.rounds,
          dt :: ts ))
      ([], [], 0, []) seeds
  in
  {
    err = med errs;
    bits = int_of_float (med bits);
    rounds;
    elapsed_ns = int_of_float (med times);
  }

(* ------------------------------------------------------------------ *)

let e1 ~quick =
  Report.section ~id:"E1  set-intersection join size (p = 0), Theorem 3.1"
    ~claim:
      "(1+eps)-approx of ||AB||_0 in 2 rounds and O~(n/eps) bits; the 1-round \
       sketch [16] and Cohen [12] adaptations pay O~(n/eps^2)";
  let n = 256 and density = 0.05 in
  let rng = Prng.create 42 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
  let actual = Product.lp_pow (Product.bool_product a b) ~p:0.0 in
  Printf.printf "workload: uniform binary, n = %d, density = %.2f, ||C||_0 = %.0f\n\n"
    n density actual;
  let cols =
    [ ("eps", 6); ("protocol", 22); ("bits", 10); ("rounds", 6); ("rel.err", 8) ]
  in
  Report.table_header cols;
  let eps_list = if quick then [ 0.5; 0.25 ] else [ 0.5; 0.25; 0.125 ] in
  let results = Hashtbl.create 16 in
  List.iter
    (fun eps ->
      let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
      let entries =
        [
          ( "Algorithm 1 (2-round)",
            run_protocol ~seeds:(seeds ~quick) ~actual (fun ctx ->
                Lp_protocol.run ctx (Lp_protocol.default_params ~eps ()) ~a:ai ~b:bi) );
          ( "1-round sketch [16]",
            run_protocol ~seeds:(seeds ~quick) ~actual (fun ctx ->
                Lp_oneround.run ctx (Lp_oneround.default_params ~eps ()) ~a:ai ~b:bi) );
          ( "Cohen adaptation [12]",
            run_protocol ~seeds:(seeds ~quick) ~actual (fun ctx ->
                Cohen_baseline.run ctx (Cohen_baseline.params_for_eps ~eps) ~a ~b) );
        ]
      in
      List.iter
        (fun (name, r) ->
          Hashtbl.replace results (name, eps) r.bits;
          Report.bench_row
            [
              ("n", Matprod_obs.Json.Int n);
              ("eps", Matprod_obs.Json.Float eps);
              ("protocol", Matprod_obs.Json.String name);
              ("seeds", Matprod_obs.Json.Int (List.length (seeds ~quick)));
              ("bits", Matprod_obs.Json.Int r.bits);
              ("rounds", Matprod_obs.Json.Int r.rounds);
              ("rel_err", Matprod_obs.Json.Float r.err);
              ("elapsed_ns", Matprod_obs.Json.Int r.elapsed_ns);
            ];
          Report.row cols
            [
              Report.f3 eps;
              name;
              Report.fbits r.bits;
              string_of_int r.rounds;
              Report.f3 r.err;
            ])
        entries)
    eps_list;
  Printf.printf "\n(trivial protocol: Alice ships A = n^2 = %s)\n"
    (Report.fbits (n * n));
  (* Shape checks: Algorithm 1's eps-scaling must be materially gentler than
     the 1-round baseline's. *)
  (match eps_list with
  | e_hi :: rest when rest <> [] ->
      let e_lo = List.nth eps_list (List.length eps_list - 1) in
      let g name =
        float_of_int (Hashtbl.find results (name, e_lo))
        /. float_of_int (Hashtbl.find results (name, e_hi))
      in
      let g1 = g "Algorithm 1 (2-round)" and g2 = g "1-round sketch [16]" in
      Report.note
        "bits growth from eps=%.3f to eps=%.3f: Algorithm 1 x%.1f, 1-round x%.1f"
        e_hi e_lo g1 g2;
      Report.record_verdict (g1 < g2)
        "Algorithm 1 scales better in eps than the 1-round baseline"
  | _ -> ());
  (* Wall-clock view: rounds and bits priced by a network model. The
     paper optimises both; which matters depends on where you run. *)
  let module Netmodel = Matprod_comm.Netmodel in
  let eps = 0.25 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  let tr_two =
    (Ctx.run ~seed:1 (fun ctx ->
         Lp_protocol.run ctx (Lp_protocol.default_params ~eps ()) ~a:ai ~b:bi))
      .Ctx.transcript
  in
  let tr_one =
    (Ctx.run ~seed:1 (fun ctx ->
         Lp_oneround.run ctx (Lp_oneround.default_params ~eps ()) ~a:ai ~b:bi))
      .Ctx.transcript
  in
  Printf.printf "\nwall-clock at eps = %.2f under network models:\n" eps;
  Printf.printf "  %-8s %18s %18s\n" "network" "Algorithm 1 (2rt)" "1-round [16]";
  List.iter
    (fun net ->
      Format.printf "  %-8s %18s %18s@."
        net.Netmodel.name
        (Format.asprintf "%a" Netmodel.pp_time (Netmodel.transfer_time net tr_two))
        (Format.asprintf "%a" Netmodel.pp_time (Netmodel.transfer_time net tr_one)))
    [ Netmodel.lan; Netmodel.wan; Netmodel.mobile ];
  Report.note
    "on latency-bound networks the extra round costs an RTT; the bit savings \
     win once bandwidth, not latency, dominates";
  (* n-scaling of Algorithm 1 at fixed eps: near-linear. *)
  let bits_at n =
    let rng = Prng.create (1000 + n) in
    let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
    let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density in
    (Ctx.run ~seed:1 (fun ctx ->
         Lp_protocol.run ctx
           (Lp_protocol.default_params ~eps ())
           ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b)))
      .Ctx.bits
  in
  let b128 = bits_at 128 and b512 = bits_at 512 in
  Report.note "Algorithm 1 bits at n=128: %s, n=512: %s (x%.1f for 4x n)"
    (Report.fbits b128) (Report.fbits b512)
    (float_of_int b512 /. float_of_int b128);
  Report.record_verdict (b512 < 8 * b128) "near-linear growth in n"

(* ------------------------------------------------------------------ *)

let e2 ~quick =
  Report.section ~id:"E2  lp norms for p in (0,2], Theorem 3.1"
    ~claim:
      "(1+eps)-approx of ||AB||_p^p for every p in [0,2] at O~(n/eps) bits, \
       2 rounds, integer matrices";
  let n = 192 in
  let rng = Prng.create 43 in
  let a = Workload.uniform_int rng ~rows:n ~cols:n ~density:0.05 ~max_value:6 in
  let b = Workload.uniform_int rng ~rows:n ~cols:n ~density:0.05 ~max_value:6 in
  let cols =
    [ ("p", 5); ("eps", 6); ("actual", 12); ("bits", 10); ("rel.err", 8) ]
  in
  Report.table_header cols;
  let all_ok = ref true in
  let eps_list = if quick then [ 0.3 ] else [ 0.3; 0.15 ] in
  List.iter
    (fun p ->
      let actual = Product.lp_pow (Product.int_product a b) ~p in
      List.iter
        (fun eps ->
          let r =
            run_protocol ~seeds:(seeds ~quick) ~actual (fun ctx ->
                Lp_protocol.run ctx (Lp_protocol.default_params ~p ~eps ()) ~a ~b)
          in
          if r.err > 3.0 *. eps then all_ok := false;
          Report.bench_row
            [
              ("n", Matprod_obs.Json.Int n);
              ("p", Matprod_obs.Json.Float p);
              ("eps", Matprod_obs.Json.Float eps);
              ("bits", Matprod_obs.Json.Int r.bits);
              ("rounds", Matprod_obs.Json.Int r.rounds);
              ("rel_err", Matprod_obs.Json.Float r.err);
              ("elapsed_ns", Matprod_obs.Json.Int r.elapsed_ns);
            ];
          Report.row cols
            [
              Report.f2 p;
              Report.f3 eps;
              Printf.sprintf "%.3g" actual;
              Report.fbits r.bits;
              Report.f3 r.err;
            ])
        eps_list)
    (if quick then [ 0.5; 1.0; 2.0 ] else [ 0.25; 0.5; 1.0; 1.5; 2.0 ]);
  Report.record_verdict !all_ok
    "every (p, eps) estimate within ~eps of the exact norm"

(* ------------------------------------------------------------------ *)

let e3 ~quick =
  Report.section ~id:"E3  exact ||AB||_1 (natural join size), Remark 2"
    ~claim:"exact answer in 1 round and O(n log n) bits";
  let cols =
    [ ("n", 6); ("workload", 10); ("bits", 10); ("rounds", 6); ("exact?", 7) ]
  in
  Report.table_header cols;
  let ok = ref true in
  let ns = if quick then [ 256; 512 ] else [ 256; 512; 1024 ] in
  let bits_used = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (wname, gen) ->
          let a, b = gen n in
          let actual = Product.l1 (Product.bool_product a b) in
          let r = Ctx.run ~seed:1 (fun ctx -> L1_exact.run_bool ctx ~a ~b) in
          if r.Ctx.output <> actual || r.Ctx.rounds <> 1 then ok := false;
          if wname = "uniform" then bits_used := (n, r.Ctx.bits) :: !bits_used;
          Report.row cols
            [
              string_of_int n;
              wname;
              Report.fbits r.Ctx.bits;
              string_of_int r.Ctx.rounds;
              (if r.Ctx.output = actual then "yes" else "NO");
            ])
        [
          ( "uniform",
            fun n ->
              let rng = Prng.create (44 + n) in
              ( Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05,
                Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.05 ) );
          ( "zipf",
            fun n ->
              let rng = Prng.create (45 + n) in
              ( Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:12 ~skew:1.1,
                Bmat.transpose
                  (Workload.zipf_bool rng ~rows:n ~cols:n ~row_degree:12 ~skew:1.1) ) );
        ])
    ns;
  Report.record_verdict !ok "always exact in one round";
  match !bits_used with
  | (n2, b2) :: _ :: _ ->
      let n1, b1 = List.nth !bits_used (List.length !bits_used - 1) in
      Report.note "bits growth n=%d -> n=%d: x%.2f (n ratio x%.1f)" n1 n2
        (float_of_int b2 /. float_of_int b1)
        (float_of_int n2 /. float_of_int n1);
      Report.record_verdict
        (float_of_int b2 /. float_of_int b1
        < 2.0 *. (float_of_int n2 /. float_of_int n1))
        "bits grow ~linearly (O(n log n))"
  | _ -> ()

(* ------------------------------------------------------------------ *)

let e4 ~quick =
  Report.section ~id:"E4  l1-sampling of AB (join tuple sampling), Remark 3"
    ~claim:"1 round, O(n log n) bits, sample distributed as C_ij/||C||_1";
  let n = 48 in
  let rng = Prng.create 46 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.1 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.1 in
  let c = Product.bool_product a b in
  let l1 = Product.l1 c in
  let trials = if quick then 400 else 2000 in
  let counts = Hashtbl.create 256 in
  let bits = ref 0 and rounds = ref 0 in
  for seed = 1 to trials do
    let r =
      Ctx.run ~seed (fun ctx ->
          L1_sampling.run ctx ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    bits := r.Ctx.bits;
    rounds := r.Ctx.rounds;
    match r.Ctx.output with
    | Some s ->
        let key = (s.L1_sampling.row, s.L1_sampling.col) in
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    | None -> ()
  done;
  (* Total-variation distance between the empirical distribution and the
     exact C/||C||_1. *)
  let entries = Product.entries c in
  let want = Array.map (fun (_, _, v) -> float_of_int v /. float_of_int l1) entries in
  let got =
    Array.map
      (fun (i, j, _) ->
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts (i, j)))
        /. float_of_int trials)
      entries
  in
  let tv = Stats.total_variation want got in
  (* Reference: the TV an *exact* sampler would show at this trial count,
     estimated by direct simulation from the true distribution. *)
  let reference_tv =
    let rng = Prng.create 4096 in
    let sim = Array.make (Array.length entries) 0.0 in
    for _ = 1 to trials do
      let target = Prng.int rng l1 in
      let acc = ref 0 and chosen = ref 0 in
      (try
         Array.iteri
           (fun idx (_, _, v) ->
             acc := !acc + v;
             if target < !acc then begin
               chosen := idx;
               raise Exit
             end)
           entries
       with Exit -> ());
      sim.(!chosen) <- sim.(!chosen) +. (1.0 /. float_of_int trials)
    done;
    Stats.total_variation want sim
  in
  Printf.printf "n = %d, ||C||_1 = %d, support = %d entries, %d samples\n" n l1
    (Array.length entries) trials;
  Printf.printf
    "bits per sample: %s   rounds: %d   TV(empirical, exact): %.3f \
     (perfect sampler at this trial count: %.3f)\n"
    (Report.fbits !bits) !rounds tv reference_tv;
  Report.record_verdict (!rounds = 1) "one round";
  Report.record_verdict
    (tv < (1.3 *. reference_tv) +. 0.02)
    "TV %.3f matches a perfect sampler's %.3f" tv reference_tv

(* ------------------------------------------------------------------ *)

let e5 ~quick =
  Report.section ~id:"E5  l0-sampling of AB (uniform intersecting pair), Theorem 3.2"
    ~claim:"1 round, O~(n/eps^2) bits, each nonzero entry with prob (1±eps)/||C||_0";
  let n = 96 in
  let rng = Prng.create 47 in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.06 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.06 in
  let c = Product.bool_product a b in
  let support = Product.nnz c in
  let trials = if quick then 100 else 400 in
  let hits = ref 0 and misses = ref 0 and wrong = ref 0 in
  let counts = Hashtbl.create 1024 in
  let bits = ref 0 in
  for seed = 1 to trials do
    let r =
      Ctx.run ~seed (fun ctx ->
          L0_sampling.run ctx
            (L0_sampling.default_params ~eps:0.25)
            ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
    in
    bits := r.Ctx.bits;
    match r.Ctx.output with
    | Some s ->
        let v = Product.get c s.L0_sampling.row s.L0_sampling.col in
        if v = 0 || v <> s.L0_sampling.value then incr wrong
        else begin
          incr hits;
          let key = (s.L0_sampling.row, s.L0_sampling.col) in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
        end
    | None -> incr misses
  done;
  Printf.printf
    "n = %d, ||C||_0 = %d; %d trials: %d valid samples, %d failures, %d wrong\n"
    n support trials !hits !misses !wrong;
  Printf.printf "bits per sample: %s\n" (Report.fbits !bits);
  (* Uniformity proxy: the max empirical frequency should be near 1/||C||_0
     (no entry grossly over-sampled). *)
  let max_count = Hashtbl.fold (fun _ v acc -> max v acc) counts 0 in
  let expect = float_of_int !hits /. float_of_int support in
  Report.note "max entry frequency %d vs uniform expectation %.2f" max_count expect;
  Report.record_verdict (!wrong = 0) "recovered values always exact";
  Report.record_verdict
    (!hits >= trials * 8 / 10)
    "sampler succeeds on >= 80%% of runs";
  Report.record_verdict
    (float_of_int max_count <= Float.max 4.0 (6.0 *. expect))
    "no entry grossly over-sampled"

let all ~quick =
  e1 ~quick;
  e2 ~quick;
  e3 ~quick;
  e4 ~quick;
  e5 ~quick
