(* Bechamel micro-benchmarks for the sketching substrate (B1–B4 in
   DESIGN.md): update/estimate throughput of the structures every protocol
   is built from. *)

open Bechamel
open Toolkit

module Prng = Matprod_util.Prng
module Ams = Matprod_sketch.Ams
module L0_sketch = Matprod_sketch.L0_sketch
module L0_sampler = Matprod_sketch.L0_sampler
module Countsketch = Matprod_sketch.Countsketch
module Countmin = Matprod_sketch.Countmin
module Stable_sketch = Matprod_sketch.Stable_sketch
module S_sparse = Matprod_sketch.S_sparse
module Cohen = Matprod_sketch.Cohen
module Cm = Matprod_sketch.Compressed_matmul

let dim = 4096

let mk_vec seed nnz =
  let rng = Prng.create seed in
  Array.init nnz (fun i -> ((i * 37) mod dim, 1 + Prng.int rng 20))

let bench_ams =
  let rng = Prng.create 1 in
  let t = Ams.create rng ~eps:0.2 ~groups:5 in
  let vec = mk_vec 2 64 in
  Test.make ~name:"ams: sketch 64-sparse vector (eps=0.2)"
    (Staged.stage (fun () -> ignore (Ams.sketch t vec)))

let bench_stable =
  let rng = Prng.create 3 in
  let t = Stable_sketch.create rng ~p:1.0 ~eps:0.2 ~groups:5 in
  let vec = mk_vec 4 64 in
  Test.make ~name:"cauchy (p=1): sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (Stable_sketch.sketch t vec)))

let bench_l0_sketch =
  let rng = Prng.create 5 in
  let t = L0_sketch.create rng ~eps:0.2 ~groups:3 ~dim in
  let vec = mk_vec 6 64 in
  Test.make ~name:"l0 sketch: sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (L0_sketch.sketch t vec)))

let bench_l0_estimate =
  let rng = Prng.create 7 in
  let t = L0_sketch.create rng ~eps:0.2 ~groups:3 ~dim in
  let st = L0_sketch.sketch t (mk_vec 8 512) in
  Test.make ~name:"l0 sketch: estimate"
    (Staged.stage (fun () -> ignore (L0_sketch.estimate t st)))

let bench_l0_sampler =
  let rng = Prng.create 9 in
  let t = L0_sampler.create rng ~dim () in
  let st = L0_sampler.sketch t (mk_vec 10 128) in
  Test.make ~name:"l0 sampler: sample"
    (Staged.stage (fun () -> ignore (L0_sampler.sample t st)))

let bench_countsketch =
  let rng = Prng.create 11 in
  let t = Countsketch.create rng ~buckets:512 ~reps:5 in
  let vec = mk_vec 12 64 in
  Test.make ~name:"countsketch: sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (Countsketch.sketch t vec)))

let bench_countmin =
  let rng = Prng.create 21 in
  let t = Countmin.create rng ~buckets:512 ~reps:5 in
  let vec = mk_vec 22 64 in
  Test.make ~name:"countmin: sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (Countmin.sketch t vec)))

let bench_cohen =
  let rng = Prng.create 23 in
  let t = Cohen.create rng ~reps:32 ~rows:dim in
  let supp = Array.init 64 (fun i -> (i * 37) mod dim) in
  let supp_of_col _ = supp in
  let plan = Cohen.plan t in
  [
    Test.make ~name:"cohen: column mins (32 reps, 64-support col)"
      (Staged.stage (fun () ->
           ignore (Cohen.column_mins t ~supp_of_col ~cols:1)));
    Test.make ~name:"cohen: column mins, planned"
      (Staged.stage (fun () ->
           ignore (Cohen.column_mins_with_plan t plan ~supp_of_col ~cols:1)));
  ]

let bench_compressed_matmul =
  let rng = Prng.create 25 in
  let t = Cm.create rng ~buckets:256 ~reps:3 in
  let vec = mk_vec 26 64 in
  let left = Array.init 16 (fun i -> Cm.half_sketch_left t ~rep:0 (mk_vec i 32)) in
  let right = Array.init 16 (fun i -> Cm.half_sketch_right t ~rep:0 (mk_vec (i + 50) 32)) in
  [
    Test.make ~name:"compressed-matmul: half sketch 64-sparse vector"
      (Staged.stage (fun () -> ignore (Cm.half_sketch_left t ~rep:0 vec)));
    Test.make ~name:"compressed-matmul: FFT combine (16 pairs, b=256)"
      (Staged.stage (fun () -> ignore (Cm.combine t ~rep:0 ~left ~right)));
  ]

(* Planned kernels vs their seed paths — same instances as above, plan and
   scratch built once (the driver amortisation). *)
let bench_planned =
  let cs = Countsketch.create (Prng.create 11) ~buckets:512 ~reps:5 in
  let cs_plan = Countsketch.plan cs ~dim in
  let cs_dst = Countsketch.empty cs in
  let cs_vec = mk_vec 12 64 in
  let ams = Ams.create (Prng.create 1) ~eps:0.2 ~groups:5 in
  let ams_plan = Ams.plan ams ~dim in
  let ams_dst = Ams.empty ams in
  let ams_vec = mk_vec 2 64 in
  let l0 = L0_sketch.create (Prng.create 5) ~eps:0.2 ~groups:3 ~dim in
  let l0_plan = L0_sketch.plan l0 ~dim in
  let l0_dst = L0_sketch.empty l0 in
  let l0_vec = mk_vec 6 64 in
  [
    Test.make ~name:"countsketch: sketch_into, planned"
      (Staged.stage (fun () -> Countsketch.sketch_into cs cs_plan ~dst:cs_dst cs_vec));
    Test.make ~name:"ams: sketch_into, planned (eps=0.2)"
      (Staged.stage (fun () -> Ams.sketch_into ams ams_plan ~dst:ams_dst ams_vec));
    Test.make ~name:"l0 sketch: sketch_into, planned"
      (Staged.stage (fun () -> L0_sketch.sketch_into l0 l0_plan ~dst:l0_dst l0_vec));
  ]

let bench_s_sparse_decode =
  let rng = Prng.create 13 in
  let t = S_sparse.create rng ~s:16 ~reps:3 in
  let st = S_sparse.sketch t (mk_vec 14 12) in
  Test.make ~name:"s-sparse: decode (12 of 16 budget)"
    (Staged.stage (fun () -> ignore (S_sparse.decode t st)))

(* Exact-product ground-truth backends: adjacency accumulation vs
   bit-packed AND+popcount, on a dense 128x128 instance. *)
let bench_product_backends =
  let module Bmat = Matprod_matrix.Bmat in
  let module Bitmat = Matprod_matrix.Bitmat in
  let module Product = Matprod_matrix.Product in
  let module Workload = Matprod_workload.Workload in
  let rng = Prng.create 15 in
  let a = Workload.uniform_bool rng ~rows:128 ~cols:128 ~density:0.3 in
  let b = Workload.uniform_bool rng ~rows:128 ~cols:128 ~density:0.3 in
  let pa = Bitmat.of_bmat a and pbt = Bitmat.of_bmat (Bmat.transpose b) in
  [
    Test.make ~name:"exact linf: output-sensitive accumulation (d=0.3)"
      (Staged.stage (fun () -> ignore (Product.linf (Product.bool_product a b))));
    Test.make ~name:"exact linf: bit-packed AND+popcount (d=0.3)"
      (Staged.stage (fun () -> ignore (Bitmat.product_linf ~a:pa ~bt:pbt)));
  ]

(* Overhead of the observability instrumentation on the protocol
   simulator: the same small Ctx.run with the metrics registry off vs on
   (the "off" path is the default for every test and experiment, and must
   stay within a few percent of free). *)
let bench_obs_overhead =
  let module Ctx = Matprod_comm.Ctx in
  let module Codec = Matprod_comm.Codec in
  let payload = Array.init 64 (fun i -> i * i) in
  let body ctx =
    ignore (Ctx.a2b ctx ~label:"xs" Codec.int_array payload);
    ignore (Ctx.b2a ctx ~label:"ack" Codec.uint 1)
  in
  [
    Test.make ~name:"ctx.run 2-message exchange (obs disabled)"
      (Staged.stage (fun () ->
           Matprod_obs.Metrics.set_enabled false;
           ignore (Ctx.run ~seed:1 body)));
    Test.make ~name:"ctx.run 2-message exchange (metrics enabled)"
      (Staged.stage (fun () ->
           Matprod_obs.Metrics.set_enabled true;
           ignore (Ctx.run ~seed:1 body);
           Matprod_obs.Metrics.set_enabled false));
  ]

let all_tests =
  Test.make_grouped ~name:"sketches"
    ([
       bench_ams; bench_stable; bench_l0_sketch; bench_l0_estimate;
       bench_l0_sampler; bench_countsketch; bench_countmin;
       bench_s_sparse_decode;
     ]
    @ bench_planned @ bench_cohen @ bench_compressed_matmul
    @ bench_product_backends @ bench_obs_overhead)

let run () =
  Printf.printf "\n%s\n" Report.hrule;
  Printf.printf "B*  Bechamel micro-benchmarks (sketch substrate throughput)\n";
  Printf.printf "%s\n" Report.hrule;
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                                      ~predictors:[| Measure.run |]) i raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true
                                 ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-48s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-48s (no estimate)\n" name)
        tbl)
    results
