(* Bechamel micro-benchmarks for the sketching substrate (B1–B4 in
   DESIGN.md): update/estimate throughput of the structures every protocol
   is built from. *)

open Bechamel
open Toolkit

module Prng = Matprod_util.Prng
module Ams = Matprod_sketch.Ams
module L0_sketch = Matprod_sketch.L0_sketch
module L0_sampler = Matprod_sketch.L0_sampler
module Countsketch = Matprod_sketch.Countsketch
module Stable_sketch = Matprod_sketch.Stable_sketch
module S_sparse = Matprod_sketch.S_sparse

let dim = 4096

let mk_vec seed nnz =
  let rng = Prng.create seed in
  Array.init nnz (fun i -> ((i * 37) mod dim, 1 + Prng.int rng 20))

let bench_ams =
  let rng = Prng.create 1 in
  let t = Ams.create rng ~eps:0.2 ~groups:5 in
  let vec = mk_vec 2 64 in
  Test.make ~name:"ams: sketch 64-sparse vector (eps=0.2)"
    (Staged.stage (fun () -> ignore (Ams.sketch t vec)))

let bench_stable =
  let rng = Prng.create 3 in
  let t = Stable_sketch.create rng ~p:1.0 ~eps:0.2 ~groups:5 in
  let vec = mk_vec 4 64 in
  Test.make ~name:"cauchy (p=1): sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (Stable_sketch.sketch t vec)))

let bench_l0_sketch =
  let rng = Prng.create 5 in
  let t = L0_sketch.create rng ~eps:0.2 ~groups:3 ~dim in
  let vec = mk_vec 6 64 in
  Test.make ~name:"l0 sketch: sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (L0_sketch.sketch t vec)))

let bench_l0_estimate =
  let rng = Prng.create 7 in
  let t = L0_sketch.create rng ~eps:0.2 ~groups:3 ~dim in
  let st = L0_sketch.sketch t (mk_vec 8 512) in
  Test.make ~name:"l0 sketch: estimate"
    (Staged.stage (fun () -> ignore (L0_sketch.estimate t st)))

let bench_l0_sampler =
  let rng = Prng.create 9 in
  let t = L0_sampler.create rng ~dim () in
  let st = L0_sampler.sketch t (mk_vec 10 128) in
  Test.make ~name:"l0 sampler: sample"
    (Staged.stage (fun () -> ignore (L0_sampler.sample t st)))

let bench_countsketch =
  let rng = Prng.create 11 in
  let t = Countsketch.create rng ~buckets:512 ~reps:5 in
  let vec = mk_vec 12 64 in
  Test.make ~name:"countsketch: sketch 64-sparse vector"
    (Staged.stage (fun () -> ignore (Countsketch.sketch t vec)))

let bench_s_sparse_decode =
  let rng = Prng.create 13 in
  let t = S_sparse.create rng ~s:16 ~reps:3 in
  let st = S_sparse.sketch t (mk_vec 14 12) in
  Test.make ~name:"s-sparse: decode (12 of 16 budget)"
    (Staged.stage (fun () -> ignore (S_sparse.decode t st)))

(* Exact-product ground-truth backends: adjacency accumulation vs
   bit-packed AND+popcount, on a dense 128x128 instance. *)
let bench_product_backends =
  let module Bmat = Matprod_matrix.Bmat in
  let module Bitmat = Matprod_matrix.Bitmat in
  let module Product = Matprod_matrix.Product in
  let module Workload = Matprod_workload.Workload in
  let rng = Prng.create 15 in
  let a = Workload.uniform_bool rng ~rows:128 ~cols:128 ~density:0.3 in
  let b = Workload.uniform_bool rng ~rows:128 ~cols:128 ~density:0.3 in
  let pa = Bitmat.of_bmat a and pbt = Bitmat.of_bmat (Bmat.transpose b) in
  [
    Test.make ~name:"exact linf: output-sensitive accumulation (d=0.3)"
      (Staged.stage (fun () -> ignore (Product.linf (Product.bool_product a b))));
    Test.make ~name:"exact linf: bit-packed AND+popcount (d=0.3)"
      (Staged.stage (fun () -> ignore (Bitmat.product_linf ~a:pa ~bt:pbt)));
  ]

(* Overhead of the observability instrumentation on the protocol
   simulator: the same small Ctx.run with the metrics registry off vs on
   (the "off" path is the default for every test and experiment, and must
   stay within a few percent of free). *)
let bench_obs_overhead =
  let module Ctx = Matprod_comm.Ctx in
  let module Codec = Matprod_comm.Codec in
  let payload = Array.init 64 (fun i -> i * i) in
  let body ctx =
    ignore (Ctx.a2b ctx ~label:"xs" Codec.int_array payload);
    ignore (Ctx.b2a ctx ~label:"ack" Codec.uint 1)
  in
  [
    Test.make ~name:"ctx.run 2-message exchange (obs disabled)"
      (Staged.stage (fun () ->
           Matprod_obs.Metrics.set_enabled false;
           ignore (Ctx.run ~seed:1 body)));
    Test.make ~name:"ctx.run 2-message exchange (metrics enabled)"
      (Staged.stage (fun () ->
           Matprod_obs.Metrics.set_enabled true;
           ignore (Ctx.run ~seed:1 body);
           Matprod_obs.Metrics.set_enabled false));
  ]

let all_tests =
  Test.make_grouped ~name:"sketches"
    ([
       bench_ams; bench_stable; bench_l0_sketch; bench_l0_estimate;
       bench_l0_sampler; bench_countsketch; bench_s_sparse_decode;
     ]
    @ bench_product_backends @ bench_obs_overhead)

let run () =
  Printf.printf "\n%s\n" Report.hrule;
  Printf.printf "B*  Bechamel micro-benchmarks (sketch substrate throughput)\n";
  Printf.printf "%s\n" Report.hrule;
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
                                      ~predictors:[| Measure.run |]) i raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true
                                 ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-48s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-48s (no estimate)\n" name)
        tbl)
    results
