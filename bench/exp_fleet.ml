(* C3: the fleet chaos experiment. A coordinator + k workers answer
   estimator queries over row-sharded inputs while per-link chaos kills
   or delays individual workers; the tables price the topology (bits and
   rounds as k grows), the recovery paths (journal resume vs rerun for a
   crashed or straggling worker), and the quorum ladder (full, degraded
   with a widened bound, or a typed failure). Writes BENCH_c3.json. *)

module Prng = Matprod_util.Prng
module Bmat = Matprod_matrix.Bmat
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Transcript = Matprod_comm.Transcript
module Workload = Matprod_workload.Workload
module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry
module Outcome = Matprod_core.Outcome
module Supervisor = Matprod_core.Supervisor
module Shard = Matprod_topology.Shard
module Fleet = Matprod_topology.Fleet
module Json = Matprod_obs.Json

let seed = 1

let pair ~n =
  let rng = Prng.create (47 * seed) in
  ( Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.2,
    Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.2 )

let estimators = [ "lp p=0"; "l1_exact"; "matprod" ]

let kill_both ~after ctx =
  Ctx.install_wire ctx
    ~fault:
      (Fault.create
         ~crashes:
           [
             { Fault.victim = Transcript.Alice; site = Fault.After_messages after };
             { Fault.victim = Transcript.Bob; site = Fault.After_messages after };
           ]
         ~seed:1 [])
    ()

let with_tmp_journals k =
  let base = Filename.temp_file "matprod_c3_" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      let dir = Filename.dirname base and stem = Filename.basename base in
      Array.iter
        (fun f ->
          if String.length f >= String.length stem
             && String.sub f 0 (String.length stem) = stem
          then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir))
    (fun () -> k base)

let c3 ~quick =
  Report.section
    ~id:
      "C3  fleet chaos: sharded topology, straggler recovery, quorum \
       degradation"
    ~claim:
      "k sharded links answer every estimator exactly as the two-party \
       protocol does per shard; a crashed or straggling worker is cheaper \
       to resume from its journal than to rerun; losing links past the \
       quorum degrades the answer with a widened bound instead of \
       corrupting it";
  let n = if quick then 24 else 48 in
  let a, b = pair ~n in

  (* --- cost vs fleet size -------------------------------------------- *)
  let ks = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let cols =
    [ ("estimator", 12); ("k", 3); ("bits", 10); ("rounds", 7); ("answer", 14) ]
  in
  Report.table_header cols;
  let all_full = ref true in
  List.iter
    (fun name ->
      let packed = Option.get (Registry.find name) in
      List.iter
        (fun k ->
          let cfg = Fleet.config ~workers:k ~seed () in
          match Fleet.run cfg packed ~a ~b with
          | Error _ -> all_full := false
          | Ok rep ->
              if Outcome.is_degraded rep.Fleet.answer then all_full := false;
              Report.row cols
                [
                  name;
                  string_of_int k;
                  Report.fbits rep.Fleet.fresh_bits;
                  string_of_int rep.Fleet.fresh_rounds;
                  Format.asprintf "%a" Estimator.pp_comparable
                    (Outcome.graded_value rep.Fleet.answer);
                ];
              Report.bench_row
                [
                  ("experiment", Json.String "fleet_size");
                  ("estimator", Json.String name);
                  ("n", Json.Int n);
                  ("workers", Json.Int k);
                  ("bits", Json.Int rep.Fleet.fresh_bits);
                  ("rounds", Json.Int rep.Fleet.fresh_rounds);
                  ("survivors", Json.Int rep.Fleet.survivors);
                ])
        ks)
    estimators;
  Report.record_verdict !all_full
    "every estimator answers Full over every fleet size";

  (* --- recovery: resume vs rerun for a crashed worker ----------------- *)
  let packed = Option.get (Registry.find "lp p=0") in
  let workers = 4 and victim = 1 in
  (* one journaled message before the crash, so the Resume rung has a
     prefix to replay *)
  let crash_wire ~rank ~replica:_ ~attempt ctx =
    if rank = victim && attempt = 1 then kill_both ~after:1 ctx
  in
  let straggle_wire ~rank ~replica:_ ~attempt ctx =
    if rank = victim && attempt = 1 then
      Ctx.install_wire ctx
        ~fault:(Fault.straggle_only ~after:0 ~burst:2 ~delay_s:5.0 ())
        ()
  in
  let deadline_policy =
    { Fleet.default_link_policy with Fleet.deadline_s = Some 0.5 }
  in
  let victim_link (rep : Fleet.report) = List.nth rep.Fleet.links victim in
  let run ?journal ?(policy = Fleet.default_link_policy) wire =
    let cfg = Fleet.config ~workers ~link_policy:policy ?journal ~seed () in
    match Fleet.run ~wire cfg packed ~a ~b with
    | Ok rep -> rep
    | Error e -> failwith (Outcome.error_to_string e)
  in
  let clean = run (fun ~rank:_ ~replica:_ ~attempt:_ _ -> ()) in
  let rcols =
    [
      ("chaos", 10);
      ("recovery", 8);
      ("victim bits", 11);
      ("replayed", 9);
      ("attempts", 8);
      ("answer ok", 9);
    ]
  in
  Printf.printf "\nrecovery cost on the victim link (worker %d of %d):\n"
    victim workers;
  Report.table_header rcols;
  let recovery_rows = ref [] in
  let measure ~chaos ~journaled wire ~policy =
    let rep =
      if journaled then with_tmp_journals (fun base -> run ~journal:base ~policy wire)
      else run ~policy wire
    in
    let l = victim_link rep in
    let resumed =
      List.exists
        (fun (at : Supervisor.attempt) -> at.Supervisor.rung = Supervisor.Resume)
        l.Fleet.attempts
    in
    let answer_ok =
      (not (Outcome.is_degraded rep.Fleet.answer))
      && Outcome.graded_value rep.Fleet.answer
         = Outcome.graded_value clean.Fleet.answer
    in
    Report.row rcols
      [
        chaos;
        (if resumed then "resume" else "rerun");
        Report.fbits l.Fleet.fresh_bits;
        Report.fbits l.Fleet.resume_bits_saved;
        string_of_int (List.length l.Fleet.attempts);
        string_of_bool answer_ok;
      ];
    Report.bench_row
      [
        ("experiment", Json.String "recovery");
        ("chaos", Json.String chaos);
        ("journaled", Json.Bool journaled);
        ("recovery", Json.String (if resumed then "resume" else "rerun"));
        ("victim_bits", Json.Int l.Fleet.fresh_bits);
        ("replayed_bits", Json.Int l.Fleet.resume_bits_saved);
        ("attempts", Json.Int (List.length l.Fleet.attempts));
        ("straggled", Json.Bool l.Fleet.straggled);
        ("answer_ok", Json.Bool answer_ok);
      ];
    recovery_rows := (chaos, journaled, l, answer_ok) :: !recovery_rows
  in
  measure ~chaos:"crash" ~journaled:false crash_wire
    ~policy:Fleet.default_link_policy;
  measure ~chaos:"crash" ~journaled:true crash_wire
    ~policy:Fleet.default_link_policy;
  measure ~chaos:"straggle" ~journaled:false straggle_wire
    ~policy:deadline_policy;
  measure ~chaos:"straggle" ~journaled:true straggle_wire
    ~policy:deadline_policy;
  let find ~chaos ~journaled =
    let _, _, l, ok =
      List.find
        (fun (c, j, _, _) -> c = chaos && j = journaled)
        !recovery_rows
    in
    (l, ok)
  in
  let all_ok = List.for_all (fun (_, _, _, ok) -> ok) !recovery_rows in
  Report.record_verdict all_ok
    "every recovery path restores the clean fleet answer";
  List.iter
    (fun chaos ->
      let resumed, _ = find ~chaos ~journaled:true in
      let rerun, _ = find ~chaos ~journaled:false in
      Report.record_verdict
        (resumed.Fleet.resume_bits_saved > 0
        && resumed.Fleet.fresh_bits < rerun.Fleet.fresh_bits)
        "%s: journal resume beats rerun (%s fresh vs %s, %s replayed free)"
        chaos
        (Report.fbits resumed.Fleet.fresh_bits)
        (Report.fbits rerun.Fleet.fresh_bits)
        (Report.fbits resumed.Fleet.resume_bits_saved))
    [ "crash"; "straggle" ];
  let straggler, _ = find ~chaos:"straggle" ~journaled:true in
  Report.record_verdict straggler.Fleet.straggled
    "the late worker is flagged as a straggler by its deadline";

  (* --- quorum ladder --------------------------------------------------- *)
  let kill_ranks ranks ~rank ~replica:_ ~attempt:_ ctx =
    if List.mem rank ranks then kill_both ~after:0 ctx
  in
  let qcols =
    [
      ("dead links", 10);
      ("quorum", 6);
      ("outcome", 9);
      ("coverage", 8);
      ("bound x", 8);
    ]
  in
  Printf.printf "\nquorum ladder (k = %d):\n" workers;
  Report.table_header qcols;
  let ladder_ok = ref true in
  List.iter
    (fun (dead, quorum) ->
      let cfg = Fleet.config ~workers ~quorum ~seed () in
      let wire = kill_ranks dead in
      let survivors = workers - List.length dead in
      let outcome, coverage, bound =
        match Fleet.run ~wire cfg packed ~a ~b with
        | Ok rep -> (
            match rep.Fleet.answer with
            | Outcome.Full _ ->
                if survivors < workers then ladder_ok := false;
                ("full", 1.0, 1.0)
            | Outcome.Degraded (_, d) ->
                if survivors >= workers || survivors < quorum then
                  ladder_ok := false;
                ("degraded", d.Outcome.coverage, d.Outcome.bound_factor))
        | Error _ ->
            if survivors >= quorum then ladder_ok := false;
            ("failed", 0.0, 0.0)
      in
      Report.row qcols
        [
          (if dead = [] then "none"
           else String.concat "," (List.map string_of_int dead));
          string_of_int quorum;
          outcome;
          Printf.sprintf "%.2f" coverage;
          Printf.sprintf "%.2f" bound;
        ];
      Report.bench_row
        [
          ("experiment", Json.String "quorum");
          ( "dead",
            Json.String
              (if dead = [] then "none"
               else String.concat "," (List.map string_of_int dead)) );
          ("quorum", Json.Int quorum);
          ("outcome", Json.String outcome);
          ("coverage", Json.Float coverage);
          ("bound_factor", Json.Float bound);
        ])
    [
      ([], 4);
      ([ 2 ], 4);
      ([ 2 ], 3);
      ([ 1; 3 ], 3);
      ([ 1; 3 ], 2);
    ];
  Report.record_verdict !ladder_ok
    "outcomes follow the quorum ladder: full when all links answer, \
     degraded (with bound 1/coverage) down to the quorum, typed failure \
     below it"
