(* Table and verdict printing for the experiment harness, plus a JSON
   sidecar: each experiment's structured rows and the Matprod_obs metrics
   it accumulated are written to BENCH_<exp>.json at exit. *)

module Json = Matprod_obs.Json
module Metrics = Matprod_obs.Metrics

let hrule = String.make 78 '-'

(* --- per-experiment JSON accumulator --------------------------------- *)

type bench_exp = {
  claim : string;
  mutable rows : Json.t list; (* reverse order *)
  mutable metrics : Json.t option;
}

let bench : (string, bench_exp) Hashtbl.t = Hashtbl.create 8
let bench_order : string list ref = ref []
let current_exp : string option ref = ref None

(* Seal the in-flight experiment: capture the metrics it accumulated and
   reset the registry so the next section starts from zero. *)
let finish_current_exp () =
  match !current_exp with
  | None -> ()
  | Some id ->
      let e = Hashtbl.find bench id in
      e.metrics <- (if Metrics.enabled () then Some (Metrics.snapshot ()) else None);
      Metrics.reset ();
      current_exp := None

let section ~id ~claim =
  finish_current_exp ();
  let exp =
    match String.index_opt id ' ' with
    | Some i -> String.lowercase_ascii (String.sub id 0 i)
    | None -> String.lowercase_ascii id
  in
  if not (Hashtbl.mem bench exp) then begin
    Hashtbl.replace bench exp { claim; rows = []; metrics = None };
    bench_order := exp :: !bench_order
  end;
  current_exp := Some exp;
  Printf.printf "\n%s\n" hrule;
  Printf.printf "%s\n" id;
  Printf.printf "paper claim: %s\n" claim;
  Printf.printf "%s\n" hrule

(* Record one structured measurement row for the current experiment. *)
let bench_row fields =
  match !current_exp with
  | None -> ()
  | Some id ->
      let e = Hashtbl.find bench id in
      e.rows <- Json.Obj fields :: e.rows

let write_bench_json () =
  finish_current_exp ();
  List.iter
    (fun exp ->
      let e = Hashtbl.find bench exp in
      let doc =
        Json.Obj
          [
            ("schema", Json.String "matprod.bench.v1");
            ("experiment", Json.String exp);
            ("claim", Json.String e.claim);
            ("rows", Json.List (List.rev e.rows));
            ( "metrics",
              match e.metrics with Some m -> m | None -> Json.Null );
          ]
      in
      let path = Printf.sprintf "BENCH_%s.json" exp in
      let oc = open_out path in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path)
    (List.rev !bench_order)

let table_header cols =
  let line =
    String.concat " | " (List.map (fun (name, w) -> Printf.sprintf "%-*s" w name) cols)
  in
  Printf.printf "%s\n" line;
  Printf.printf "%s\n" (String.make (String.length line) '-')

let row cols cells =
  let line =
    String.concat " | "
      (List.map2 (fun (_, w) cell -> Printf.sprintf "%-*s" w cell) cols cells)
  in
  Printf.printf "%s\n" line

let verdict ok fmt =
  Printf.ksprintf
    (fun s -> Printf.printf "VERDICT %s %s\n" (if ok then "[pass]" else "[FAIL]") s)
    fmt

let note fmt = Printf.ksprintf (fun s -> Printf.printf "note: %s\n" s) fmt

let fbits bits =
  if bits >= 8_000_000 then Printf.sprintf "%.1f MB" (float_of_int bits /. 8e6)
  else if bits >= 8_000 then Printf.sprintf "%.1f kB" (float_of_int bits /. 8e3)
  else Printf.sprintf "%d b" bits

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

(* Aggregate a per-seed measurement: median of runs. *)
let median_of xs = Matprod_util.Stats.median (Array.of_list xs)

(* Least-squares slope of log(y) against log(x): the measured scaling
   exponent of a cost curve. *)
let fit_loglog_slope pts =
  let pts =
    List.filter_map
      (fun (x, y) ->
        if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      pts
  in
  let n = float_of_int (List.length pts) in
  if n < 2.0 then invalid_arg "Report.fit_loglog_slope: need >= 2 points";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

type outcome = { mutable passed : int; mutable failed : int }

let outcome = { passed = 0; failed = 0 }

let record_verdict ok fmt =
  if ok then outcome.passed <- outcome.passed + 1
  else outcome.failed <- outcome.failed + 1;
  verdict ok fmt

let summary () =
  Printf.printf "\n%s\n" hrule;
  Printf.printf "SUMMARY: %d verdicts passed, %d failed\n" outcome.passed
    outcome.failed;
  Printf.printf "%s\n" hrule
