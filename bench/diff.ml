(* bench/diff — the regression gate. Compares current BENCH_<exp>.json
   sidecars against committed baselines (bench/baselines/) with
   per-metric tolerances: deterministic fields (bits, rounds, counts,
   errors) must match exactly, timing-derived fields are ignored unless a
   --tol override gates them. Exit 1 on any drift, so `make bench-diff`
   and CI fail on injected or real regressions. *)

module Json = Matprod_obs.Json
module Regression = Matprod_obs.Regression

let usage =
  "usage: diff [--baselines DIR] [--current DIR] [--tol KEY=SPEC]... [EXP]...\n\
   SPEC is a relative tolerance (0.25), 'exact', or 'ignore'.\n\
   With no EXP arguments, every BENCH_*.json in the baselines dir is \
   checked."

let parse_tol spec =
  match String.index_opt spec '=' with
  | None -> failwith ("--tol expects KEY=SPEC, got " ^ spec)
  | Some i -> (
      let k = String.sub spec 0 i in
      let v = String.sub spec (i + 1) (String.length spec - i - 1) in
      match v with
      | "exact" -> (k, Regression.Exact)
      | "ignore" -> (k, Regression.Ignore)
      | v -> (
          match float_of_string_opt v with
          | Some r when r >= 0.0 -> (k, Regression.Rel r)
          | _ -> failwith ("--tol " ^ k ^ ": bad tolerance " ^ v)))

let parse_args () =
  let baselines = ref "bench/baselines" in
  let current = ref "." in
  let overrides = ref [] in
  let exps = ref [] in
  let rec go = function
    | [] -> ()
    | "--baselines" :: dir :: rest ->
        baselines := dir;
        go rest
    | "--current" :: dir :: rest ->
        current := dir;
        go rest
    | "--tol" :: spec :: rest ->
        overrides := parse_tol spec :: !overrides;
        go rest
    | ("--help" | "-h") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        prerr_endline ("diff: unknown option " ^ arg);
        prerr_endline usage;
        exit 2
    | exp :: rest ->
        exps := exp :: !exps;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (!baselines, !current, List.rev !overrides, List.rev !exps)

let read_json path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> Json.of_string (really_input_string ic (in_channel_length ic)))

let baseline_files dir exps =
  let all =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  match exps with
  | [] -> all
  | exps ->
      List.filter
        (fun f -> List.mem (Filename.chop_suffix f ".json") (List.map (( ^ ) "BENCH_") exps))
        all

let () =
  let baselines, current, overrides, exps = parse_args () in
  if not (Sys.is_directory baselines) then begin
    Printf.eprintf "diff: baselines directory %s not found\n" baselines;
    exit 2
  end;
  let files = baseline_files baselines exps in
  if files = [] then begin
    Printf.eprintf "diff: no BENCH_*.json baselines in %s\n" baselines;
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun f ->
      let bpath = Filename.concat baselines f in
      let cpath = Filename.concat current f in
      if not (Sys.file_exists cpath) then begin
        Printf.printf "%-4s FAIL: %s missing — run the quick bench tier first\n"
          (Filename.chop_suffix (String.sub f 6 (String.length f - 6)) ".json")
          cpath;
        failed := true
      end
      else begin
        let r =
          Regression.compare_docs ~overrides ~baseline:(read_json bpath)
            ~current:(read_json cpath) ()
        in
        Format.printf "%a@." Regression.pp_result r;
        if not (Regression.ok r) then failed := true
      end)
    files;
  if !failed then begin
    print_endline
      "bench-diff: regression detected (refresh baselines with `make \
       bench-baseline` only if the change is intended)";
    exit 1
  end
