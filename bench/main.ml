(* Experiment harness: one section per experiment in DESIGN.md's index
   (E1–E12), each printing the paper's claim, the measured table, and a
   pass/fail verdict on the claim's *shape* (who wins, how costs scale),
   plus Bechamel micro-benchmarks for the sketch substrate.

   Usage:
     dune exec bench/main.exe                 # everything, full sizes
     dune exec bench/main.exe -- --quick      # reduced sizes/seeds
     dune exec bench/main.exe -- e1 e6        # selected experiments
*)

let experiments =
  [
    ( "e1",
      fun ~quick ->
        Exp_lp.e1 ~quick;
        Exp_engine.e1 ~quick );
    ("e2", fun ~quick -> Exp_lp.e2 ~quick);
    ("e3", fun ~quick -> Exp_lp.e3 ~quick);
    ("e4", fun ~quick -> Exp_lp.e4 ~quick);
    ("e5", fun ~quick -> Exp_lp.e5 ~quick);
    ("e6", fun ~quick -> Exp_linf.e6 ~quick);
    ("e7", fun ~quick -> Exp_linf.e7 ~quick);
    ("e8", fun ~quick -> Exp_linf.e8 ~quick);
    ("e9", fun ~quick -> Exp_hh.e9 ~quick);
    ("e10", fun ~quick -> Exp_hh.e10 ~quick);
    ("e11", fun ~quick -> Exp_lb.e11 ~quick);
    ("e12", fun ~quick -> Exp_lb.e12 ~quick);
    ("a1", fun ~quick -> Exp_ablation.a1 ~quick);
    ("a2", fun ~quick -> Exp_ablation.a2 ~quick);
    ("a3", fun ~quick -> Exp_ablation.a3 ~quick);
    ("a4", fun ~quick -> Exp_ablation.a4 ~quick);
    ("sc1", fun ~quick -> Exp_scaling.sc1 ~quick);
    ("sc2", fun ~quick -> Exp_scaling.sc2 ~quick);
    ("s1", fun ~quick -> Exp_serve.s1 ~quick);
    ("c1", fun ~quick -> Exp_chaos.c1 ~quick);
    ("c2", fun ~quick -> Exp_chaos.c2 ~quick);
    ("c3", fun ~quick -> Exp_fleet.c3 ~quick);
    ("c4", fun ~quick -> Exp_byzantine.c4 ~quick);
    ("p1", fun ~quick -> Exp_perf.p1 ~quick);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let micro = not (List.mem "--no-micro" args) in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) experiments with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf "unknown experiment %S (known: e1..e12, a1..a4, sc1, sc2, s1, c1..c4, p1)\n" name;
              exit 1)
        selected
  in
  Printf.printf
    "Distributed Statistical Estimation of Matrix Products — experiment \
     harness%s\n"
    (if quick then " (quick mode)" else "");
  (* Per-experiment counters/histograms feed the BENCH_<exp>.json sidecars. *)
  Matprod_obs.Metrics.set_enabled true;
  List.iter (fun (_, f) -> f ~quick) to_run;
  Report.write_bench_json ();
  Matprod_obs.Metrics.set_enabled false;
  if micro && selected = [] then Microbench.run ();
  Report.summary ();
  if Report.outcome.Report.failed > 0 then exit 1
