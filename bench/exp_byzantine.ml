(* C4: the byzantine defense experiment. One worker per fleet delivers a
   perfectly framed wrong answer (CRC/ARQ pass by construction); the
   tables price the two semantic defenses — coordinator-side answer
   verification and replica voting — as detection rate and overhead for
   replicas in {1, 2, 3} x every corruption mode. Writes BENCH_c4.json. *)

module Prng = Matprod_util.Prng
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Workload = Matprod_workload.Workload
module Estimator = Matprod_core.Estimator
module Registry = Matprod_core.Registry
module Outcome = Matprod_core.Outcome
module Verify = Matprod_verify.Verify
module Fleet = Matprod_topology.Fleet
module Metrics = Matprod_obs.Metrics
module Json = Matprod_obs.Json

let seed = 1
let workers = 3
let victim = 1

let pair ~n =
  let rng = Prng.create (53 * seed) in
  ( Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.2,
    Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.2 )

(* One estimator per answer family: exact scalar, numeric sketch, additive
   shares (Freivalds), drawn samples, coordinate report. *)
let estimators ~quick =
  if quick then [ "l1_exact"; "lp p=0"; "matprod" ]
  else [ "l1_exact"; "lp p=0"; "matprod"; "l0_sampling"; "hh_binary" ]

(* The coordinate-report family needs coordinates to lie about: uniform
   noise has no heavy pairs relative to a shard's mass, so every shard's
   honest answer would be empty and a byzantine rule a no-op. Keep the
   noise thin (so a shard's ||C||_1 stays small against the default
   phi = 0.2) and plant enough overlap pairs that the victim's row shard
   reports some. *)
let inputs ~n name =
  if name = "hh_binary" then
    let rng = Prng.create (59 * seed) in
    Workload.planted_heavy_hitters rng ~n ~density:0.01
      ~heavy:[ (2 * workers, n - n / 6) ]
  else pair ~n

let byzantine_wire ~mode ~rank ~replica ~attempt ctx =
  if rank = victim && replica = 0 && attempt = 1 then
    Ctx.install_wire ctx
      ~fault:(Fault.byzantine_only ~seed:(97 * (victim + 1)) ~mode ())
      ()

let c4 ~quick =
  Report.section
    ~id:"C4  byzantine defense: answer verification and replica voting"
    ~claim:
      "a worker that lies with valid framing is invisible to the transport \
       layer; coordinator-side validators catch out-of-range junk on their \
       own, replica voting catches every mode at r >= 2, verification adds \
       zero wire bits, and the replica-r fleet costs r x the bits of the \
       single-replica fleet";
  let n = if quick then 24 else 48 in
  let replica_counts = [ 1; 2; 3 ] in

  (* --- overhead: clean fleets, verification on vs off ------------------ *)
  let cols =
    [ ("estimator", 12); ("r", 2); ("bits", 10); ("verify bits", 11);
      ("checks", 7) ]
  in
  Printf.printf "clean-fleet overhead (k = %d):\n" workers;
  Report.table_header cols;
  let zero_cost = ref true and linear = ref true in
  let clean_answers = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let packed = Option.get (Registry.find name) in
      let a, b = inputs ~n name in
      let base_bits = ref 0 in
      List.iter
        (fun r ->
          let run ~verify =
            let cfg = Fleet.config ~quorum:(workers - 1) ~replicas:r ~verify
                ~workers ~seed ()
            in
            match Fleet.run cfg packed ~a ~b with
            | Ok rep -> rep
            | Error e ->
                failwith
                  (Printf.sprintf "%s clean r=%d: %s" name r
                     (Outcome.error_to_string e))
          in
          let plain = run ~verify:false in
          let checks0 = Metrics.total "verify_checks" in
          let verified = run ~verify:true in
          let checks = Metrics.total "verify_checks" - checks0 in
          if r = 1 then base_bits := plain.Fleet.fresh_bits;
          Hashtbl.replace clean_answers (name, r)
            (Outcome.graded_value verified.Fleet.answer);
          if verified.Fleet.fresh_bits <> plain.Fleet.fresh_bits then
            zero_cost := false;
          if verified.Fleet.suspects <> [] then zero_cost := false;
          let ratio =
            float_of_int plain.Fleet.fresh_bits /. float_of_int !base_bits
          in
          if ratio < 0.9 *. float_of_int r || ratio > 1.1 *. float_of_int r
          then linear := false;
          Report.row cols
            [
              name;
              string_of_int r;
              Report.fbits plain.Fleet.fresh_bits;
              Report.fbits verified.Fleet.fresh_bits;
              string_of_int checks;
            ];
          Report.bench_row
            [
              ("experiment", Json.String "overhead");
              ("estimator", Json.String name);
              ("n", Json.Int n);
              ("replicas", Json.Int r);
              ("bits", Json.Int plain.Fleet.fresh_bits);
              ("verify_bits", Json.Int verified.Fleet.fresh_bits);
              ("verify_checks", Json.Int checks);
            ])
        replica_counts)
    (estimators ~quick);
  Report.record_verdict !zero_cost
    "verification adds zero wire bits and quarantines nobody on an honest \
     fleet";
  Report.record_verdict !linear
    "the replica-r fleet costs r x the single-replica bits (within 10%%)";

  (* --- detection: one lying worker, every mode x replicas -------------- *)
  let dcols =
    [ ("estimator", 12); ("mode", 9); ("r", 2); ("verdict", 22);
      ("detected", 8) ]
  in
  Printf.printf "\ndetection (worker %d lies on replica 0):\n" victim;
  Report.table_header dcols;
  let garbage_caught = ref true and no_silent = ref true in
  let detected_at = Hashtbl.create 64 in
  List.iter
    (fun name ->
      let packed = Option.get (Registry.find name) in
      let a, b = inputs ~n name in
      let summary = Verify.summarize ~name ~a ~b in
      List.iter
        (fun mode ->
          List.iter
            (fun r ->
              let cfg =
                Fleet.config ~quorum:(workers - 1) ~replicas:r ~verify:true
                  ~workers ~seed ()
              in
              let wire = byzantine_wire ~mode in
              let failures0 = Metrics.total "verify_failures" in
              let result = Fleet.run ~wire cfg packed ~a ~b in
              let vfailures = Metrics.total "verify_failures" - failures0 in
              let clean = Hashtbl.find clean_answers (name, r) in
              let detected, verdict =
                match result with
                | Error (Outcome.Byzantine_detected { check; _ }) ->
                    (true, "failed: " ^ check)
                | Error e -> (false, Outcome.error_to_string e)
                | Ok rep -> (
                    match rep.Fleet.suspects with
                    | s :: _ -> (true, "quarantined: " ^ s.Fleet.s_check)
                    | [] ->
                        if Outcome.is_degraded rep.Fleet.answer then
                          (true, "degraded")
                        else (false, "undetected"))
              in
              (* never silent: an undetected Full answer must be the clean
                 one or within the family's own consistency bound of it *)
              (match result with
              | Ok rep when not detected -> (
                  match rep.Fleet.answer with
                  | Outcome.Full v
                    when v <> clean
                         && (match Verify.vote summary [ (0, clean); (1, v) ]
                             with
                            | Some vr -> vr.Verify.outvoted <> []
                            | None -> true) ->
                      no_silent := false
                  | _ -> ())
              | _ -> ());
              if mode = Fault.Garbage && vfailures = 0 then
                garbage_caught := false;
              if detected then Hashtbl.replace detected_at (name, mode, r) ();
              Report.row dcols
                [
                  name;
                  Fault.byzantine_mode_to_string mode;
                  string_of_int r;
                  verdict;
                  string_of_bool detected;
                ];
              Report.bench_row
                [
                  ("experiment", Json.String "detection");
                  ("estimator", Json.String name);
                  ("mode", Json.String (Fault.byzantine_mode_to_string mode));
                  ("replicas", Json.Int r);
                  ("detected", Json.Int (if detected then 1 else 0));
                  ("verify_failures", Json.Int vfailures);
                  ("verdict", Json.String verdict);
                ])
            replica_counts)
        Fault.all_byzantine_modes)
    (estimators ~quick);
  let replicated_catch =
    List.for_all
      (fun name ->
        List.for_all
          (fun mode ->
            List.exists
              (fun r -> r >= 2 && Hashtbl.mem detected_at (name, mode, r))
              replica_counts)
          Fault.all_byzantine_modes)
      (estimators ~quick)
  in
  Report.record_verdict !garbage_caught
    "garbage is always caught by the validators alone (every replica \
     count, no vote needed)";
  Report.record_verdict replicated_catch
    "every corruption mode is caught for every estimator once replicas \
     >= 2";
  Report.record_verdict !no_silent
    "no undetected run ever answers outside the family's consistency \
     bound of the clean fleet";
  let total = Hashtbl.length detected_at in
  let combos =
    List.length (estimators ~quick)
    * List.length Fault.all_byzantine_modes
    * List.length replica_counts
  in
  Report.note "detection rate %d/%d over estimator x mode x replicas" total
    combos
