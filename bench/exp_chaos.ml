(* C1: the robustness sweep. Protocols are replayed over an unreliable
   wire under several fault profiles; the table shows what reliability
   costs (bits inflation from retransmissions and acks) and what it buys
   (every completed run equals the fault-free one — the trichotomy of
   docs/ROBUSTNESS.md, here as a measured verdict rather than a unit
   test). The last column prices the clean transcript on a WAN with
   matching frame loss via Netmodel. *)

module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Ctx = Matprod_comm.Ctx
module Fault = Matprod_comm.Fault
module Journal = Matprod_comm.Journal
module Reliable = Matprod_comm.Reliable
module Netmodel = Matprod_comm.Netmodel
module Transcript = Matprod_comm.Transcript
module Workload = Matprod_workload.Workload
module Outcome = Matprod_core.Outcome
module Json = Matprod_obs.Json

let z = Fault.zero_rates

(* (name, rates, comparable WAN loss probability) *)
let profiles =
  [
    ("clean", z, 0.0);
    ("drop 10%", { z with Fault.drop = 0.1 }, 0.1);
    ("corrupt 20%", { z with Fault.corrupt = 0.2 }, 0.2);
    ("truncate 15%", { z with Fault.truncate = 0.15 }, 0.15);
    ( "storm",
      {
        Fault.drop = 0.08;
        corrupt = 0.1;
        truncate = 0.08;
        duplicate = 0.1;
        delay = 0.15;
        delay_s = 0.1;
      },
      0.26 );
  ]

(* Each runner returns a digest of its output so clean and faulted runs
   can be compared across heterogeneous result types. *)
let protocols ~n ~seed =
  let rng = Prng.create (31 * seed) in
  let a = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.2 in
  let b = Workload.uniform_bool rng ~rows:n ~cols:n ~density:0.2 in
  let ai = Imat.of_bmat a and bi = Imat.of_bmat b in
  [
    ( "Algorithm 1 (p=0, eps=.5)",
      fun ctx ->
        Hashtbl.hash
          (Matprod_core.Lp_protocol.run ctx
             (Matprod_core.Lp_protocol.default_params ~eps:0.5 ())
             ~a:ai ~b:bi) );
    ( "Algorithm 2 (eps=.5)",
      fun ctx ->
        Hashtbl.hash
          (Matprod_core.Linf_binary.run ctx
             (Matprod_core.Linf_binary.default_params ~eps:0.5)
             ~a ~b) );
    ( "Alg 5 (product shares)",
      fun ctx ->
        let s = Matprod_core.Matprod_protocol.run ctx ~a:ai ~b:bi in
        Hashtbl.hash
          Matprod_core.Common.
            (Entry_map.entries s.Matprod_core.Matprod_protocol.alice,
             Entry_map.entries s.Matprod_core.Matprod_protocol.bob) );
  ]

let reliable = Reliable.config ~max_attempts:16 ()

let c1 ~quick =
  Report.section
    ~id:"C1  unreliable wire: what reliability costs and what it buys"
    ~claim:
      "over a faulty wire every run ends in a typed verdict — a success \
       byte-identical to the fault-free run or a typed failure — and \
       retransmission overhead is the only price; a zero-rate wire is free";
  let n = if quick then 24 else 48 in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  let cols =
    [
      ("profile", 13);
      ("protocol", 26);
      ("ok", 5);
      ("bits clean", 10);
      ("bits faulty", 11);
      ("retries", 7);
      ("wan+loss", 9);
    ]
  in
  Report.table_header cols;
  let trichotomy_violations = ref 0 in
  let clean_overhead = ref 0 in
  let faulted_inflation_ok = ref true in
  let total_retries = ref 0 in
  List.iter
    (fun (pname, rates, wan_loss) ->
      List.iter
        (fun (proto, _) ->
          let oks = ref 0 and runs = ref 0 in
          let bits_clean = ref [] and bits_faulty = ref [] in
          let retries = ref 0 in
          let wan_time = ref 0.0 in
          List.iter
            (fun seed ->
              (* rebuild the gallery per seed so inputs vary *)
              let f = List.assoc proto (protocols ~n ~seed) in
              incr runs;
              let clean = Ctx.run ~seed f in
              bits_clean := clean.Ctx.bits :: !bits_clean;
              wan_time :=
                !wan_time
                +. Netmodel.transfer_time
                     (if wan_loss = 0.0 then Netmodel.wan
                      else Netmodel.with_loss Netmodel.wan ~loss:wan_loss)
                     clean.Ctx.transcript;
              let faulted =
                try
                  Outcome.guard (fun () ->
                      Ctx.run ~seed (fun ctx ->
                          Ctx.install_wire ctx
                            ~fault:(Fault.uniform ~seed:(seed + 7000) rates)
                            ~reliable ();
                          let digest = f ctx in
                          (digest, Ctx.wire_stats ctx)))
                with _ ->
                  incr trichotomy_violations;
                  Error (Outcome.Protocol_failure "escaped exception")
              in
              match faulted with
              | Ok run ->
                  incr oks;
                  let digest, wire = run.Ctx.output in
                  if digest <> clean.Ctx.output then
                    incr trichotomy_violations;
                  bits_faulty := run.Ctx.bits :: !bits_faulty;
                  retries := !retries + wire.Matprod_comm.Channel.retries;
                  if Fault.zero_rates = rates then
                    clean_overhead :=
                      !clean_overhead + (run.Ctx.bits - clean.Ctx.bits)
                  else if run.Ctx.bits < clean.Ctx.bits then
                    faulted_inflation_ok := false
              | Error _ -> ())
            seeds;
          total_retries := !total_retries + !retries;
          let mean xs =
            match xs with
            | [] -> 0
            | _ ->
                List.fold_left ( + ) 0 xs / List.length xs
          in
          Report.row cols
            [
              pname;
              proto;
              Printf.sprintf "%d/%d" !oks !runs;
              Report.fbits (mean !bits_clean);
              (if !bits_faulty = [] then "-" else Report.fbits (mean !bits_faulty));
              string_of_int !retries;
              Printf.sprintf "%.2fs" (!wan_time /. float_of_int !runs);
            ];
          Report.bench_row
            [
              ("profile", Json.String pname);
              ("protocol", Json.String proto);
              ("n", Json.Int n);
              ("ok", Json.Int !oks);
              ("runs", Json.Int !runs);
              ("bits_clean", Json.Int (mean !bits_clean));
              ("bits_faulty", Json.Int (mean !bits_faulty));
              ("retries", Json.Int !retries);
              ("wan_loss", Json.Float wan_loss);
            ])
        (protocols ~n ~seed:1))
    profiles;
  Report.note
    "every Ok is checked against the fault-free digest; failures are typed \
     Link/Decode/Protocol errors, never escaped exceptions";
  Report.record_verdict (!trichotomy_violations = 0)
    "trichotomy: no escaped exception, no silent wrong answer (%d violations)"
    !trichotomy_violations;
  Report.record_verdict (!clean_overhead = 0)
    "zero-rate wire adds zero bits (overhead %d)" !clean_overhead;
  Report.record_verdict !faulted_inflation_ok
    "surviving faulted runs never undercount bits vs clean";
  Report.record_verdict (!total_retries > 0)
    "fault profiles actually exercise retransmission (%d retries)"
    !total_retries

(* C2: crash recovery. A party is killed after k delivered messages for
   every position k in the transcript; the crashed run's journal is then
   resumed. The table compares the cost of finishing via resume (only the
   suffix is fresh) against rerunning from scratch (the full transcript
   again), which is what a supervisor without a journal would pay. *)
let c2 ~quick =
  Report.section
    ~id:"C2  crash recovery: resume from journal vs rerun from scratch"
    ~claim:
      "for every crash position k >= 1, resuming from the write-ahead \
       journal costs strictly fewer fresh bits than a rerun, the saving is \
       exactly the journaled prefix, and the resumed output equals the \
       fault-free run";
  let n = if quick then 24 else 48 in
  let seed = 1 in
  let cols =
    [
      ("protocol", 26);
      ("crash at", 8);
      ("victim", 6);
      ("bits full", 10);
      ("replayed", 9);
      ("fresh", 9);
      ("saved", 6);
    ]
  in
  Report.table_header cols;
  let outputs_equal = ref true in
  let resume_cheaper = ref true in
  let accounted = ref true in
  let positions = ref 0 in
  List.iter
    (fun (proto, f) ->
      let base = Ctx.run ~seed f in
      let msgs = Transcript.messages base.Ctx.transcript in
      for k = 1 to List.length msgs - 1 do
        incr positions;
        let victim = (List.nth msgs k).Transcript.sender in
        let path = Filename.temp_file "matprod_c2_" ".journal" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          (fun () ->
            (match
               Outcome.guard (fun () ->
                   Ctx.run_journaled ~seed ~journal:path ~protocol:proto
                     (fun ctx ->
                       Ctx.install_wire ctx
                         ~fault:
                           (Fault.crash_only ~party:victim
                              ~at:(Fault.After_messages k))
                         ~reliable ();
                       f ctx))
             with
            | Error (Outcome.Crashed _) -> ()
            | _ -> outputs_equal := false (* the crash must fire, typed *));
            match Journal.load path with
            | Error _ -> outputs_equal := false
            | Ok j ->
                let r = Ctx.resume ~seed ~journal:j f in
                if r.Ctx.output <> base.Ctx.output then outputs_equal := false;
                if r.Ctx.bits >= base.Ctx.bits then resume_cheaper := false;
                if r.Ctx.bits + r.Ctx.replayed_bits <> base.Ctx.bits then
                  accounted := false;
                let saved = base.Ctx.bits - r.Ctx.bits in
                Report.row cols
                  [
                    proto;
                    string_of_int k;
                    Transcript.party_name victim;
                    Report.fbits base.Ctx.bits;
                    Report.fbits r.Ctx.replayed_bits;
                    Report.fbits r.Ctx.bits;
                    Printf.sprintf "%d%%" (100 * saved / max 1 base.Ctx.bits);
                  ];
                Report.bench_row
                  [
                    ("protocol", Json.String proto);
                    ("n", Json.Int n);
                    ("crash_after", Json.Int k);
                    ("victim", Json.String (Transcript.party_name victim));
                    ("bits_full", Json.Int base.Ctx.bits);
                    ("bits_replayed", Json.Int r.Ctx.replayed_bits);
                    ("bits_resume_fresh", Json.Int r.Ctx.bits);
                    ("bits_saved", Json.Int saved);
                    ("replayed_messages", Json.Int r.Ctx.replayed_messages);
                  ])
      done)
    (protocols ~n ~seed);
  Report.note
    "a rerun-from-scratch supervisor pays 'bits full' again after every \
     crash; resume pays only 'fresh', saving the journaled prefix";
  Report.record_verdict (!positions > 0)
    "the sweep covered %d crash positions" !positions;
  Report.record_verdict !outputs_equal
    "every crash is typed and every resumed run equals the fault-free output";
  Report.record_verdict !resume_cheaper
    "resume is strictly cheaper than rerun at every crash position k >= 1";
  Report.record_verdict !accounted
    "fresh + replayed bits account exactly for the fault-free transcript"
