(* Experiments E9–E10: heavy hitters (Section 5). *)

module Prng = Matprod_util.Prng
module Imat = Matprod_matrix.Imat
module Product = Matprod_matrix.Product
module Ctx = Matprod_comm.Ctx
module Workload = Matprod_workload.Workload
module Hh_general = Matprod_core.Hh_general
module Hh_binary = Matprod_core.Hh_binary

let seeds ~quick = if quick then [ 1 ] else [ 1; 2; 3 ]

let band_check ~p ~phi ~eps c s =
  let must = Product.heavy_hitters c ~p ~phi in
  let may = Product.heavy_hitters c ~p ~phi:(phi -. eps) in
  let recall = List.for_all (fun e -> List.mem e s) must in
  let precision = List.for_all (fun e -> List.mem e may) s in
  (recall, precision, List.length must, List.length may)

(* ------------------------------------------------------------------ *)

let e9 ~quick =
  Report.section
    ~id:"E9  lp-(phi,eps)-heavy-hitters, integer matrices (Algorithm 4 / Cor 5.2)"
    ~claim:
      "O(1) rounds, O~(sqrt(phi)/eps * n) bits; output S with \
       HH_phi <= S <= HH_{phi-eps}";
  let n = 256 in
  (* Integer inputs: planted entries of ~50*25^2 = 31k over a large
     background mass, so Algorithm 4's beta < 1 subsampled regime engages.
     The (phi, eps) grid is derived from the workload's measured spectrum:
     bands where the planted entries are comfortably heavy, and one where
     nothing is. *)
  let rng = Prng.create 51 in
  let a, b, _ =
    Workload.planted_heavy_int rng ~n ~density:0.02 ~max_value:8
      ~heavy:[ (2, 50, 25) ]
  in
  let c = Product.int_product a b in
  let l1 = float_of_int (Product.l1 c) in
  let vmax = float_of_int (Product.linf c) in
  Printf.printf "workload: ||C||_1 = %.3g, max entry = %.0f (ratio %.4f)\n\n" l1
    vmax (vmax /. l1);
  let cols =
    [
      ("phi", 7); ("eps", 7); ("|HH|", 5); ("|S|", 5); ("recall", 7);
      ("precis", 7); ("beta", 6); ("bits", 10); ("rounds", 6);
    ]
  in
  Report.table_header cols;
  let grid =
    let top = vmax /. l1 in
    if quick then [ (0.8 *. top, 0.4 *. top) ]
    else
      [
        (0.8 *. top, 0.4 *. top);
        (0.5 *. top, 0.25 *. top);
        (1.5 *. top, 0.5 *. top);
      ]
  in
  let all_ok = ref true in
  List.iter
    (fun (phi, eps) ->
      List.iter
        (fun seed ->
          let t0 = Matprod_obs.Clock.now_ns () in
          let r =
            Ctx.run ~seed (fun ctx ->
                Hh_general.run_full ctx
                  (Hh_general.default_params ~phi ~eps ())
                  ~a ~b)
          in
          let elapsed_ns = Matprod_obs.Clock.elapsed_ns t0 in
          let out = r.Ctx.output in
          let recall, precision, n_must, _ =
            band_check ~p:1.0 ~phi ~eps c out.Hh_general.set
          in
          if not (recall && precision) then all_ok := false;
          Report.bench_row
            [
              ("n", Matprod_obs.Json.Int n);
              ("phi", Matprod_obs.Json.Float phi);
              ("eps", Matprod_obs.Json.Float eps);
              ("seed", Matprod_obs.Json.Int seed);
              ("hh_exact", Matprod_obs.Json.Int n_must);
              ("set_size", Matprod_obs.Json.Int (List.length out.Hh_general.set));
              ("recall_ok", Matprod_obs.Json.Bool recall);
              ("precision_ok", Matprod_obs.Json.Bool precision);
              ("beta", Matprod_obs.Json.Float out.Hh_general.beta);
              ("bits", Matprod_obs.Json.Int r.Ctx.bits);
              ("rounds", Matprod_obs.Json.Int r.Ctx.rounds);
              ("elapsed_ns", Matprod_obs.Json.Int elapsed_ns);
            ];
          if seed = 1 then
            Report.row cols
              [
                Printf.sprintf "%.4f" phi;
                Printf.sprintf "%.4f" eps;
                string_of_int n_must;
                string_of_int (List.length out.Hh_general.set);
                (if recall then "yes" else "NO");
                (if precision then "yes" else "NO");
                Report.f2 out.Hh_general.beta;
                Report.fbits r.Ctx.bits;
                string_of_int r.Ctx.rounds;
              ])
        (seeds ~quick))
    grid;
  Report.record_verdict !all_ok
    "the (phi, eps) band holds on every run (HH_phi <= S <= HH_{phi-eps})";
  (* Baseline face-off at the first grid point: Algorithm 4 vs the
     CountSketch adaptation of [32] (one round, Theta~(n b) bits) vs the
     trivial ship-A protocol. *)
  let phi, eps = List.hd grid in
  let alg4 =
    Ctx.run ~seed:1 (fun ctx ->
        Hh_general.run ctx (Hh_general.default_params ~phi ~eps ()) ~a ~b)
  in
  let csk =
    Ctx.run ~seed:1 (fun ctx ->
        Matprod_core.Hh_countsketch.run ctx
          (Matprod_core.Hh_countsketch.default_params ~phi ~eps ~buckets:2048)
          ~a ~b)
  in
  let triv =
    Ctx.run ~seed:1 (fun ctx ->
        Matprod_core.Trivial.run_int ctx ~a ~b (fun c ->
            Product.heavy_hitters c ~p:1.0 ~phi))
  in
  let band_ok s =
    let recall, precision, _, _ = band_check ~p:1.0 ~phi ~eps c s in
    recall && precision
  in
  Printf.printf "\nbaseline comparison at phi = %.4f:\n" phi;
  Printf.printf "  %-28s %10s  band\n" "protocol" "bits";
  Printf.printf "  %-28s %10s  %s\n" "Algorithm 4" (Report.fbits alg4.Ctx.bits)
    (if band_ok alg4.Ctx.output then "ok" else "VIOLATED");
  Printf.printf "  %-28s %10s  %s\n" "CountSketch [32] adaptation"
    (Report.fbits csk.Ctx.bits)
    (if band_ok csk.Ctx.output then "ok" else "VIOLATED");
  Printf.printf "  %-28s %10s  exact\n" "trivial (ship A)"
    (Report.fbits triv.Ctx.bits);
  Report.record_verdict
    (alg4.Ctx.bits < csk.Ctx.bits)
    "Algorithm 4 beats the CountSketch adaptation (%s vs %s)"
    (Report.fbits alg4.Ctx.bits) (Report.fbits csk.Ctx.bits)

(* ------------------------------------------------------------------ *)

let e10 ~quick =
  Report.section
    ~id:"E10  lp-(phi,eps)-heavy-hitters, binary matrices (Sec 5.2 / Thm 5.3)"
    ~claim:
      "O(1) rounds, O~(n + phi/eps^2) bits — near-linear in n, vs \
       Algorithm 4's O~(sqrt(phi)/eps * n)";
  let phi = 0.01 and eps = 0.005 in
  let cols =
    [
      ("n", 6); ("|HH|", 5); ("|S|", 5); ("recall", 7); ("precis", 7);
      ("bin bits", 10); ("gen bits", 10);
    ]
  in
  Report.table_header cols;
  let ns = if quick then [ 128; 256 ] else [ 128; 256; 512 ] in
  let all_ok = ref true in
  let bin_bits = ref [] in
  List.iter
    (fun n ->
      let rng = Prng.create (52 + n) in
      (* Constant expected row degree (~6) so noise ||C||_1 grows linearly
         with n; one planted pair stays phi-heavy across the sweep. *)
      let a, b =
        Workload.planted_heavy_hitters rng ~n ~density:(6.0 /. float_of_int n)
          ~heavy:[ (1, min (n - 10) 300) ]
      in
      let c = Product.bool_product a b in
      let t0 = Matprod_obs.Clock.now_ns () in
      let r =
        Ctx.run ~seed:1 (fun ctx ->
            Hh_binary.run ctx (Hh_binary.default_params ~phi ~eps ()) ~a ~b)
      in
      let elapsed_ns = Matprod_obs.Clock.elapsed_ns t0 in
      let g =
        Ctx.run ~seed:1 (fun ctx ->
            Hh_general.run ctx
              (Hh_general.default_params ~phi ~eps ())
              ~a:(Imat.of_bmat a) ~b:(Imat.of_bmat b))
      in
      let recall, precision, n_must, _ = band_check ~p:1.0 ~phi ~eps c r.Ctx.output in
      if not (recall && precision) then all_ok := false;
      bin_bits := (n, r.Ctx.bits) :: !bin_bits;
      Report.bench_row
        [
          ("n", Matprod_obs.Json.Int n);
          ("phi", Matprod_obs.Json.Float phi);
          ("eps", Matprod_obs.Json.Float eps);
          ("seed", Matprod_obs.Json.Int 1);
          ("hh_exact", Matprod_obs.Json.Int n_must);
          ("set_size", Matprod_obs.Json.Int (List.length r.Ctx.output));
          ("recall_ok", Matprod_obs.Json.Bool recall);
          ("precision_ok", Matprod_obs.Json.Bool precision);
          ("bits", Matprod_obs.Json.Int r.Ctx.bits);
          ("general_bits", Matprod_obs.Json.Int g.Ctx.bits);
          ("rounds", Matprod_obs.Json.Int r.Ctx.rounds);
          ("elapsed_ns", Matprod_obs.Json.Int elapsed_ns);
        ];
      Report.row cols
        [
          string_of_int n;
          string_of_int n_must;
          string_of_int (List.length r.Ctx.output);
          (if recall then "yes" else "NO");
          (if precision then "yes" else "NO");
          Report.fbits r.Ctx.bits;
          Report.fbits g.Ctx.bits;
        ])
    ns;
  Report.record_verdict !all_ok "the (phi, eps) band holds";
  match (!bin_bits, List.rev !bin_bits) with
  | (n_hi, b_hi) :: _, (n_lo, b_lo) :: _ when n_hi <> n_lo ->
      let growth = float_of_int b_hi /. float_of_int b_lo in
      let nratio = float_of_int n_hi /. float_of_int n_lo in
      Report.note "binary-protocol bits grow x%.1f for n x%.1f" growth nratio;
      Report.record_verdict (growth < 2.0 *. nratio)
        "binary protocol stays near-linear in n"
  | _ -> ()

let all ~quick =
  e9 ~quick;
  e10 ~quick
